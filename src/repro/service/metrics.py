"""Service metrics: counters, an in-flight gauge, and latency percentiles.

A deliberately small, dependency-free registry.  Latencies are kept per
operation in a bounded ring of recent samples (default 2048), from which
p50/p95 are computed on demand — the sliding-window flavor of percentile
that serving dashboards actually want.  All methods are thread-safe; the
asyncio server updates it from worker threads.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict, deque


def percentile(samples, fraction):
    """The *fraction*-quantile of *samples* (nearest-rank on a sorted copy)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


class MetricsRegistry:
    """Counts, gauges and latency windows for the query service."""

    def __init__(self, window=2048):
        self._lock = threading.Lock()
        self._counters = defaultdict(int)
        self._latencies = defaultdict(lambda: deque(maxlen=window))
        self._phases = defaultdict(lambda: deque(maxlen=window))
        self._phase_totals = defaultdict(float)
        self._phase_counts = defaultdict(int)
        self._in_flight = 0

    # ------------------------------------------------------------ updates

    def incr(self, name, amount=1):
        with self._lock:
            self._counters[name] += amount

    def set_counter(self, name, value):
        """Pin a counter to an externally-tracked value (e.g. a cache's
        commit-driven counters, mirrored into snapshots on demand)."""
        with self._lock:
            self._counters[name] = value

    def observe_latency(self, op, seconds):
        with self._lock:
            self._latencies[op].append(seconds)

    def observe_phase(self, phase, seconds):
        """Record one pipeline-phase duration (plan, cache_lookup, evaluate,
        encode, queue_wait, ...) for the per-phase latency breakdown."""
        self.observe_phases(((phase, seconds),))

    def observe_phases(self, pairs):
        """Record several ``(phase, seconds)`` samples under one lock grab —
        the request hot path batches its phases to keep the fixed per-request
        cost at a single extra acquisition."""
        with self._lock:
            for phase, seconds in pairs:
                self._phases[phase].append(seconds)
                self._phase_totals[phase] += seconds
                self._phase_counts[phase] += 1

    def request_started(self):
        with self._lock:
            self._in_flight += 1

    def request_finished(self):
        with self._lock:
            # Clamp: the gauge must never read negative, even if shutdown
            # races ever unbalance a started/finished pair (the clamp events
            # are counted so the imbalance stays visible).
            if self._in_flight > 0:
                self._in_flight -= 1
            else:
                self._counters["gauge.in_flight_clamped"] += 1

    def request_completed(self, op, seconds, phases=()):
        """End-of-request bookkeeping — the ``requests.<op>`` counter, the
        latency sample, the in-flight decrement, and the request's phase
        samples — under one lock grab (separate acquisitions are measurable
        on the ~12µs cache-hit path)."""
        with self._lock:
            self._counters[f"requests.{op}"] += 1
            self._latencies[op].append(seconds)
            if self._in_flight > 0:
                self._in_flight -= 1
            else:
                self._counters["gauge.in_flight_clamped"] += 1
            for phase, elapsed in phases:
                self._phases[phase].append(elapsed)
                self._phase_totals[phase] += elapsed
                self._phase_counts[phase] += 1

    # ------------------------------------------------------------- export

    @property
    def in_flight(self):
        with self._lock:
            return self._in_flight

    def counter(self, name):
        with self._lock:
            return self._counters[name]

    def snapshot(self):
        """A JSON-ready dict of everything the registry knows."""
        with self._lock:
            latency = {}
            for op, window in self._latencies.items():
                samples = list(window)
                latency[op] = {
                    "count": len(samples),
                    "p50_ms": _ms(percentile(samples, 0.50)),
                    "p95_ms": _ms(percentile(samples, 0.95)),
                    "max_ms": _ms(max(samples) if samples else None),
                }
            phases = {}
            for phase, window in self._phases.items():
                samples = list(window)
                phases[phase] = {
                    "count": self._phase_counts[phase],
                    "p50_ms": _ms(percentile(samples, 0.50)),
                    "p95_ms": _ms(percentile(samples, 0.95)),
                    "total_ms": _ms(self._phase_totals[phase]),
                }
            return {
                "counters": dict(self._counters),
                "latency": latency,
                "phases": phases,
                "in_flight": self._in_flight,
            }


def _ms(seconds):
    return None if seconds is None else round(seconds * 1000.0, 3)
