"""Store-coherent result caching.

Answers are cached under ``(plan fingerprint, evaluation parameters, store
version)``.  The store's version counter is strictly monotonic and bumps on
every committed transaction (see :class:`repro.ham.store.HAMStore`), so a
cached answer can only ever be served for the exact committed state it was
computed from — a commit between two identical queries changes the key and
forces re-evaluation.  Stale answers are therefore impossible by
construction; no explicit invalidation scan is needed.  A commit hook
(:meth:`ResultCache.attach`) additionally drops entries for superseded
versions eagerly, so the LRU's capacity is spent on live entries instead of
unreachable ones.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


def result_key(fingerprint, params, version):
    """The cache key for one evaluation of one plan at one store version."""
    normalized = tuple(sorted((k, str(v)) for k, v in (params or {}).items()))
    return (fingerprint, normalized, version)


class ResultCache:
    """A thread-safe LRU mapping result keys to computed answers."""

    def __init__(self, capacity=1024):
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """The cached value, or None; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def drop_older_than(self, version):
        """Eagerly drop entries computed at versions below *version*.

        Purely an occupancy optimization: version-keyed lookups already
        never match superseded entries.
        """
        with self._lock:
            dead = [key for key in self._entries if key[2] < version]
            for key in dead:
                del self._entries[key]
            self.invalidations += len(dead)

    def attach(self, store):
        """Subscribe to *store* commits; returns the unsubscribe callable."""

        def on_commit(record):
            self.drop_older_than(record.version)

        store.subscribe(on_commit)
        return lambda: store.unsubscribe(on_commit)

    def clear(self):
        with self._lock:
            self._entries.clear()

    def stats(self):
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
