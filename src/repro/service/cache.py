"""Store-coherent, delta-scoped result caching.

Answers are cached under ``(plan fingerprint, evaluation parameters)`` and
stamped with the store version they were computed at plus the plan's
*predicate footprint* — every predicate whose extension the answer can
depend on.  A lookup only serves an entry stamped with the current version.

Commits keep the cache warm instead of cold: the commit hook
(:meth:`ResultCache.attach`) reads the typed :class:`~repro.ham.delta.Delta`
off each commit record and compares the delta's touched predicates against
each entry's footprint.  Disjoint → the answer provably cannot have changed,
so the entry is *re-stamped* to the new version and stays servable (counted
as ``delta_reuse_hits``); intersecting (or footprint unknown) → the entry is
dropped.  A commit touching one edge label no longer cold-starts every
cached answer — only the ones that could actually observe it.

Parameter normalization is type-tagged: ``{"limit": 1}``, ``{"limit": "1"}``
and ``{"limit": True}`` produce three distinct keys (plain ``str(v)``
normalization used to collide them, which could serve the wrong answer).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro import obs
from repro.core.translate import DOMAIN_PREDICATE


def _canonical(value):
    """A hashable, type-tagged form of one parameter value.

    The tag comes first so values of different types can never compare
    equal (``True == 1`` and ``1.0 == 1`` in Python; ``bool`` is checked
    before ``int`` because it *is* an ``int``).
    """
    if value is None:
        return ("none",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", value)
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(_canonical(v) for v in value)))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((str(k), _canonical(v)) for k, v in value.items())),
        )
    return ("repr", type(value).__name__, repr(value))


def result_key(fingerprint, params):
    """The cache key for one evaluation of one plan: fingerprint + params.

    The store version is *not* part of the key — entries carry their version
    as a stamp so the commit hook can re-stamp still-valid answers instead
    of orphaning them under a dead key.
    """
    normalized = tuple(
        sorted((str(k), _canonical(v)) for k, v in (params or {}).items())
    )
    return (fingerprint, normalized)


class _Entry:
    __slots__ = ("value", "version", "footprint")

    def __init__(self, value, version, footprint):
        self.value = value
        self.version = version
        self.footprint = footprint


class ResultCache:
    """A thread-safe LRU of versioned, footprint-stamped answers."""

    def __init__(self, capacity=1024):
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.delta_reuse_hits = 0

    def __len__(self):
        return len(self._entries)

    def get(self, key, version):
        """The cached value if present *and* current; counts hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.version != version:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def put(self, key, value, version, footprint=None):
        """Cache *value* computed at *version* by a plan reading *footprint*.

        *footprint* is the set of predicates the answer depends on; ``None``
        means unknown, which every later commit treats as intersecting.
        """
        with self._lock:
            self._entries[key] = _Entry(value, version, footprint)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def apply_commit(self, version, touched):
        """Re-stamp or drop entries after a commit.

        *touched* is the set of predicates the commit's delta may have
        changed (``None`` = unknown → drop everything).  Entries whose
        footprint provably misses *touched* survive with the new version
        stamp; the rest are invalidated.  Only entries current as of the
        previous version are re-stamped: versions bump by exactly one per
        commit, so an entry lagging further behind was computed before some
        commit this hook never cleared it against (a put racing a commit)
        and cannot be proven fresh.
        """
        with obs.span(
            "cache.apply_commit",
            version=version,
            touched=sorted(touched) if touched is not None else None,
        ) as span:
            with self._lock:
                dead = []
                restamped = 0
                for key, entry in self._entries.items():
                    if (
                        touched is not None
                        and entry.footprint is not None
                        and entry.version == version - 1
                        and not (entry.footprint & touched)
                    ):
                        entry.version = version
                        self.delta_reuse_hits += 1
                        restamped += 1
                    else:
                        dead.append(key)
                for key in dead:
                    del self._entries[key]
                self.invalidations += len(dead)
                span.annotate(restamped=restamped, dropped=len(dead))

    def attach(self, store, domain_predicate=DOMAIN_PREDICATE):
        """Subscribe to *store* commits; returns the unsubscribe callable."""

        def on_commit(record):
            delta = getattr(record, "delta", None)
            touched = (
                delta.touched_predicates(domain_predicate)
                if delta is not None
                else None
            )
            self.apply_commit(record.version, touched)

        store.subscribe(on_commit)
        return lambda: store.unsubscribe(on_commit)

    def clear(self):
        with self._lock:
            self._entries.clear()

    def stats(self):
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "delta_reuse_hits": self.delta_reuse_hits,
            }
