"""``repro top`` — a live terminal dashboard over the service ``stats`` op.

Polls a running service and renders QPS (from request-counter deltas
between polls), per-op and per-phase latency quantiles, cache hit rates,
the in-flight gauge, WAL fsync latency, durable-state counters, the
highest-churn predicates, replication role and lag (replica: versions
behind its primary; primary: tail/bootstrap traffic), and slow-query log
occupancy.  Pure text — the
screen is cleared with ANSI codes only when stdout is a TTY, so piping a
single iteration into a file or a test stays clean.
"""

from __future__ import annotations

import sys
import time

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_ms(value):
    return "-" if value is None else f"{value:9.3f}"


def _rate(hits, misses):
    total = hits + misses
    return f"{hits / total:6.1%}" if total else "     -"


class TopDashboard:
    """Render loop over a :class:`~repro.service.client.ServiceClient`."""

    def __init__(self, client, interval=2.0, out=None):
        self.client = client
        self.interval = interval
        self.out = out if out is not None else sys.stdout
        self._last_requests = None
        self._last_time = None

    # ------------------------------------------------------------- polling

    def run(self, iterations=None):
        """Poll and redraw until *iterations* (None = until interrupted)."""
        remaining = iterations
        try:
            while remaining is None or remaining > 0:
                self.tick()
                if remaining is not None:
                    remaining -= 1
                    if remaining == 0:
                        break
                time.sleep(self.interval)
        except KeyboardInterrupt:
            pass

    def tick(self):
        """One poll + redraw; returns the rendered text."""
        stats = self.client.stats()
        now = time.monotonic()
        qps = self._qps(stats, now)
        text = self.render(stats, qps)
        if self.out.isatty():
            self.out.write(_CLEAR)
        self.out.write(text)
        self.out.flush()
        return text

    def snapshot(self):
        """One poll as a machine-readable document (``repro top --json``):
        the raw ``stats`` plus the QPS computed from counter deltas (None
        on the first poll — there is no previous sample to diff against)."""
        stats = self.client.stats()
        qps = self._qps(stats, time.monotonic())
        return {"stats": stats, "qps": qps}

    def _qps(self, stats, now):
        counters = stats.get("metrics", {}).get("counters", {})
        total = sum(
            value for name, value in counters.items() if name.startswith("requests.")
        )
        qps = None
        if self._last_requests is not None and now > self._last_time:
            qps = (total - self._last_requests) / (now - self._last_time)
        self._last_requests = total
        self._last_time = now
        return qps

    # ----------------------------------------------------------- rendering

    def render(self, stats, qps=None):
        metrics = stats.get("metrics", {})
        lines = []

        store = stats.get("store", {})
        qps_text = "-" if qps is None else f"{qps:.1f}"
        lines.append(
            f"repro top — version {store.get('version', '?')}  "
            f"qps {qps_text}  in-flight {metrics.get('in_flight', 0)}  "
            f"nodes {store.get('nodes', '?')}  edges {store.get('edges', '?')}"
        )
        lines.append("")

        lines.append("requests            count       p50ms     p95ms     p99ms     maxms")
        for op, entry in sorted(metrics.get("latency", {}).items()):
            lines.append(
                f"  {op:<16} {entry['count']:>8}   "
                f"{_fmt_ms(entry.get('p50_ms'))} {_fmt_ms(entry.get('p95_ms'))} "
                f"{_fmt_ms(entry.get('p99_ms'))} {_fmt_ms(entry.get('max_ms'))}"
            )
        lines.append("")

        lines.append("phases              count       p50ms     p99ms   totalms")
        for phase, entry in sorted(metrics.get("phases", {}).items()):
            lines.append(
                f"  {phase:<16} {entry['count']:>8}   "
                f"{_fmt_ms(entry.get('p50_ms'))} {_fmt_ms(entry.get('p99_ms'))} "
                f"{_fmt_ms(entry.get('total_ms'))}"
            )
        lines.append("")

        plan = stats.get("plan_cache", {})
        result = stats.get("result_cache", {})
        lines.append(
            f"caches    plan {plan.get('size', 0)}/{plan.get('capacity', 0)} "
            f"hit {_rate(plan.get('hits', 0), plan.get('misses', 0)).strip()}    "
            f"result {result.get('size', 0)}/{result.get('capacity', 0)} "
            f"hit {_rate(result.get('hits', 0), result.get('misses', 0)).strip()} "
            f"(delta-reuse {result.get('delta_reuse_hits', 0)})"
        )

        durability = store.get("durability")
        if durability:
            wal = durability.get("wal", {})
            checkpoint = durability.get("checkpoint", {})
            fsync = metrics.get("phases", {}).get("wal.fsync", {})
            fsync_text = (
                f"fsync p50 {_fmt_ms(fsync.get('p50_ms')).strip()}ms "
                f"p99 {_fmt_ms(fsync.get('p99_ms')).strip()}ms"
                if fsync
                else "fsync -"
            )
            lines.append(
                f"wal       appends {wal.get('appends', 0)}  "
                f"bytes {wal.get('bytes', 0)}  segments {wal.get('segments', 0)}  "
                f"ckpt v{checkpoint.get('last_version', 0)}  {fsync_text}"
            )

        predicates = store.get("predicates") or {}
        if predicates:
            lines.append("")
            lines.append("top predicates       facts    churn rows  commits")
            ranked = sorted(
                predicates.items(),
                key=lambda kv: (kv[1]["churn_rows"], kv[1]["facts"]),
                reverse=True,
            )
            for name, info in ranked[:10]:
                lines.append(
                    f"  {name:<16} {info['facts']:>9}   {info['churn_rows']:>9}  "
                    f"{info['churn_commits']:>7}"
                )

        replication = stats.get("replication") or {}
        if replication.get("role") == "replica":
            lag = replication.get("lag_versions")
            lag_text = "?" if lag is None else str(lag)
            if replication.get("connected"):
                state = "connected"
            else:
                # While disconnected the lag is the last *known* value;
                # show how stale the estimate itself is.
                stale = replication.get("seconds_since_poll")
                state = (
                    "DISCONNECTED"
                    if stale is None
                    else f"DISCONNECTED {stale:.0f}s"
                )
            line = (
                f"replica   of {replication.get('primary', '?')}  {state}  "
                f"lag {lag_text} versions  "
                f"applied v{replication.get('applied_version', '?')}  "
                f"records {replication.get('records_applied', 0)}  "
                f"errors {replication.get('tail_errors', 0)}"
            )
            epoch = replication.get("primary_epoch")
            if epoch:
                line += f"  epoch {epoch[:8]}"
            lines.append("")
            lines.append(line)
        elif replication.get("tail_requests") or replication.get("bootstraps_served"):
            line = (
                f"primary   bootstraps {replication.get('bootstraps_served', 0)}  "
                f"tails {replication.get('tail_requests', 0)}  "
                f"shipped {replication.get('records_shipped', 0)}  "
                f"resets {replication.get('resets_signaled', 0)}"
            )
            epoch = replication.get("epoch")
            if epoch:
                line += f"  epoch {epoch[:8]}"
            if replication.get("promotion"):
                line += "  PROMOTED"
            lines.append("")
            lines.append(line)

        subs = stats.get("subs") or {}
        if subs.get("active_subscriptions") or subs.get("deltas_pushed"):
            p50 = subs.get("push_p50_ms")
            p99 = subs.get("push_p99_ms")
            push_text = (
                f"push p50 {p50:.3f}ms p99 {p99:.3f}ms"
                if p50 is not None
                else "push -"
            )
            lines.append("")
            lines.append(
                f"subs      active {subs.get('active_subscriptions', 0)}  "
                f"views {subs.get('shared_views', 0)}  "
                f"queued {subs.get('queue_depth', 0)}  "
                f"deltas {subs.get('deltas_pushed', 0)}  "
                f"snapshots {subs.get('snapshots_sent', 0)}  "
                f"overflows {subs.get('overflows', 0)}  {push_text}"
            )
            lines.append(
                f"          maintenance passes {subs.get('maintenance_passes', 0)}  "
                f"diff refreshes {subs.get('diff_refreshes', 0)}  "
                f"resyncs {subs.get('resyncs', 0)}  "
                f"disconnects {subs.get('disconnects', 0)}"
            )

        slowlog = stats.get("slowlog") or {}
        if slowlog:
            threshold = slowlog.get("threshold_ms")
            threshold_text = "off" if threshold is None else f"{threshold}ms"
            lines.append("")
            lines.append(
                f"slowlog   threshold {threshold_text}  "
                f"held {slowlog.get('size', 0)}/{slowlog.get('capacity', 0)}  "
                f"recorded {slowlog.get('recorded', 0)}"
            )

        return "\n".join(lines) + "\n"


class ClusterDashboard:
    """``repro top --cluster`` — one panel over the router's ``cluster_stats``.

    Polls a :class:`~repro.service.client.ServiceClient` pointed at a
    router, renders one row per node (role, epoch, version, lag, request
    rate) plus the aggregate latency table whose quantiles come from
    histograms *merged across nodes* (never quantiles of quantiles), and
    the router's own counters.  Per-node QPS is computed from
    request-counter deltas between polls, keyed by node address so nodes
    can come and go between ticks.
    """

    def __init__(self, client, interval=2.0, out=None):
        self.client = client
        self.interval = interval
        self.out = out if out is not None else sys.stdout
        self._last = {}  # address -> (requests_total, monotonic)

    # ------------------------------------------------------------- polling

    def run(self, iterations=None):
        remaining = iterations
        try:
            while remaining is None or remaining > 0:
                self.tick()
                if remaining is not None:
                    remaining -= 1
                    if remaining == 0:
                        break
                time.sleep(self.interval)
        except KeyboardInterrupt:
            pass

    def tick(self):
        """One poll + redraw; returns the rendered text."""
        doc = self.client.cluster_stats()
        qps = self._node_qps(doc, time.monotonic())
        text = self.render(doc, qps)
        if self.out.isatty():
            self.out.write(_CLEAR)
        self.out.write(text)
        self.out.flush()
        return text

    def snapshot(self):
        """One poll as a machine-readable document: the raw
        ``cluster_stats`` plus per-address QPS (None on the first poll)."""
        doc = self.client.cluster_stats()
        qps = self._node_qps(doc, time.monotonic())
        return {"cluster": doc, "qps": qps}

    def _node_qps(self, doc, now):
        qps = {}
        seen = set()
        for node in doc.get("nodes", ()):
            address = node.get("address")
            total = node.get("requests_total")
            if address is None or total is None:
                continue
            seen.add(address)
            previous = self._last.get(address)
            if previous is not None and now > previous[1]:
                qps[address] = (total - previous[0]) / (now - previous[1])
            else:
                qps[address] = None
            self._last[address] = (total, now)
        # Forget nodes that left the topology so a rejoin doesn't diff
        # against a stale counter from a previous life.
        for address in list(self._last):
            if address not in seen:
                del self._last[address]
        return qps

    # ----------------------------------------------------------- rendering

    def render(self, doc, qps=None):
        qps = qps or {}
        router = doc.get("router", {})
        aggregate = doc.get("aggregate", {})
        nodes = doc.get("nodes", [])
        lines = []

        max_lag = aggregate.get("max_lag_versions")
        lines.append(
            f"repro top --cluster — router {router.get('address', '?')}  "
            f"nodes {aggregate.get('nodes_ok', 0)}/{aggregate.get('nodes_total', 0)}  "
            f"requests {aggregate.get('requests_total', 0)}  "
            f"max-lag {'-' if max_lag is None else max_lag}"
        )
        lines.append("")

        lines.append(
            "node                    role     state  epoch      version"
            "      lag      qps  inflight"
        )
        for node in nodes:
            address = node.get("address", "?")
            if not node.get("ok"):
                error = str(node.get("error", "unreachable"))[:40]
                lines.append(f"  {address:<21} {node.get('role', '?'):<8} DOWN   {error}")
                continue
            epoch = node.get("epoch") or "-"
            lag = node.get("lag_versions")
            rate = qps.get(address)
            lines.append(
                f"  {address:<21} {node.get('role', '?'):<8} up     "
                f"{str(epoch)[:8]:<9}  {node.get('version', '?'):>7}  "
                f"{'-' if lag is None else lag:>7}  "
                f"{'-' if rate is None else format(rate, '.1f'):>7}  "
                f"{node.get('in_flight', 0):>8}"
            )
        lines.append("")

        lines.append(
            "cluster latency (merged)   count       p50ms     p95ms     p99ms     maxms"
        )
        for op, entry in sorted((aggregate.get("latency") or {}).items()):
            lines.append(
                f"  {op:<22} {entry['count']:>8}   "
                f"{_fmt_ms(entry.get('p50_ms'))} {_fmt_ms(entry.get('p95_ms'))} "
                f"{_fmt_ms(entry.get('p99_ms'))} {_fmt_ms(entry.get('max_ms'))}"
            )
        skipped = aggregate.get("histograms_skipped")
        if skipped:
            lines.append(f"  ({skipped} histogram(s) skipped: incompatible bucket layouts)")
        lines.append("")

        counters = router.get("counters") or {}
        lines.append(
            f"router    reads {counters.get('reads_routed', 0)}  "
            f"writes {counters.get('writes_routed', 0)}  "
            f"stale-redirects {counters.get('stale_redirects', 0)}  "
            f"ejections {counters.get('ejections', 0)}  "
            f"fallbacks {counters.get('primary_fallbacks', 0)}  "
            f"failovers {counters.get('failovers', 0)}"
        )
        traces = router.get("traces") or {}
        lines.append(
            f"          connections {router.get('connections', 0)}  "
            f"uptime {router.get('uptime_seconds', 0):.0f}s  "
            f"trace-ring {traces.get('size', 0)}/{traces.get('capacity', 0)} "
            f"(sample {traces.get('sample_rate', 0)})"
        )
        return "\n".join(lines) + "\n"
