"""The concurrent query service: GraphLog as a long-lived server.

The paper's Section 5 prototype is a single-user editor over in-memory
graphs; this subsystem turns the same engine stack into a multiuser serving
layer in the spirit of the HAM's "general-purpose, transaction-based,
multiuser server":

- :mod:`repro.service.protocol` — the JSON-lines wire protocol;
- :mod:`repro.service.prepared` — prepared queries: parse, λ-translate,
  stratify, and safety-check once, cache the compiled plan by fingerprint;
- :mod:`repro.service.cache` — the store-coherent LRU result cache, keyed
  by (plan fingerprint, parameters) with version-stamped entries; commits
  re-stamp entries whose predicate footprint the delta provably misses and
  invalidate only the rest;
- :mod:`repro.service.metrics` — request counters, cache hit/miss counts,
  latency percentiles, in-flight gauge;
- :mod:`repro.service.server` — the synchronous :class:`QueryService` core
  and the asyncio JSON-lines TCP server around it;
- :mod:`repro.service.client` — a blocking TCP client.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.metrics import MetricsRegistry
from repro.service.prepared import PreparedQuery, PreparedQueryCache, fingerprint
from repro.service.server import QueryService, ServiceConfig, ServiceServer

__all__ = [
    "MetricsRegistry",
    "PreparedQuery",
    "PreparedQueryCache",
    "QueryService",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "fingerprint",
]
