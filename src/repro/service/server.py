"""The concurrent query service: sync core + asyncio JSON-lines TCP server.

Two layers, separable on purpose:

- :class:`QueryService` is the synchronous, thread-safe core: it owns the
  prepared-plan cache, the store-coherent result cache, and the metrics
  registry, and executes one decoded request against the HAM store.  Tests
  and benchmarks drive it directly, in-process.
- :class:`ServiceServer` is the network front: an asyncio TCP server that
  speaks the JSON-lines protocol (:mod:`repro.service.protocol`),
  dispatches each request to a worker-thread pool, and enforces the
  per-request timeout.  Connections are handled concurrently; requests on
  one connection are answered in order.

Budget semantics: ``timeout`` bounds wall-clock evaluation time (the worker
thread finishes in the background after a timeout — results land in the
cache for the next attempt, but the client gets ``QueryTimeout``);
``max_rows``/``max_bytes`` bound the answer size and are re-checked on
cache hits so per-request overrides behave identically hot or cold.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.errors import (
    ProtocolError,
    QueryTimeout,
    ReadOnlyError,
    ReplicaStale,
    ReproError,
    ResultTooLarge,
    StoreError,
)
from repro.ham.store import HAMStore, new_epoch
from repro.obs import context as trace_context
from repro.obs import logs
from repro.obs.metrics import MetricFamily
from repro.obs.slowlog import SlowQueryLog
from repro.service import protocol
from repro.service.cache import ResultCache, result_key
from repro.service.metrics import MetricsRegistry
from repro.service.prepared import PreparedQuery, PreparedQueryCache

logger = logging.getLogger(__name__)

_QUERY_OPS = ("graphlog", "datalog", "rpq")
#: Request fields that parameterize evaluation (and the result-cache key).
_PARAM_FIELDS = ("predicate", "method", "source")


class ServiceConfig:
    """Tunables for one service instance."""

    __slots__ = (
        "host",
        "port",
        "workers",
        "timeout",
        "max_rows",
        "max_bytes",
        "plan_cache_size",
        "result_cache_size",
        "trace_ring_size",
        "data_dir",
        "fsync",
        "fsync_interval",
        "segment_bytes",
        "checkpoint_every",
        "keep_checkpoints",
        "metrics_host",
        "metrics_port",
        "slow_ms",
        "slowlog_capacity",
        "slowlog_path",
        "trace_sample",
        "span_path",
        "span_max_bytes",
        "replica_of",
        "repl_wait_ms",
        "repl_max_lag",
        "repl_disconnect_grace",
        "version_wait_ms",
        "engine",
        "sub_queue_max",
        "sub_policy",
    )

    def __init__(
        self,
        host="127.0.0.1",
        port=0,
        workers=8,
        timeout=30.0,
        max_rows=100_000,
        max_bytes=8 * 1024 * 1024,
        plan_cache_size=256,
        result_cache_size=1024,
        trace_ring_size=64,
        data_dir=None,
        fsync="interval",
        fsync_interval=0.05,
        segment_bytes=16 * 1024 * 1024,
        checkpoint_every=0,
        keep_checkpoints=2,
        metrics_host="127.0.0.1",
        metrics_port=None,
        slow_ms=None,
        slowlog_capacity=128,
        slowlog_path=None,
        trace_sample=0.0,
        span_path=None,
        span_max_bytes=16 * 1024 * 1024,
        replica_of=None,
        repl_wait_ms=2000,
        repl_max_lag=None,
        repl_disconnect_grace=10.0,
        version_wait_ms=2000,
        engine="columnar",
        sub_queue_max=256,
        sub_policy="resync",
    ):
        self.host = host
        self.port = port
        self.workers = workers
        self.timeout = timeout
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self.plan_cache_size = plan_cache_size
        self.result_cache_size = result_cache_size
        self.trace_ring_size = trace_ring_size
        #: When set, the HAM store is durable: commits are WAL-logged under
        #: this directory and the service recovers from it at startup.
        self.data_dir = data_dir
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.segment_bytes = segment_bytes
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        #: When set, a telemetry HTTP endpoint (/metrics + /healthz) is
        #: served on this port from a side thread (0 = ephemeral).
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        #: Requests slower than this many milliseconds are captured (with
        #: their span tree) into the slow-query log; None disables it.
        self.slow_ms = slow_ms
        self.slowlog_capacity = slowlog_capacity
        self.slowlog_path = slowlog_path
        #: Head-based trace sampling rate in [0, 1]: this fraction of
        #: requests (deterministically, every 1/rate-th) runs under a full
        #: request span tree, recorded in the trace ring and exported to
        #: the span sink when one is configured.  Requests arriving with a
        #: trace context honor the *sender's* decision instead.
        self.trace_sample = trace_sample
        #: JSONL file sampled traces are exported to (rotated at
        #: ``span_max_bytes``); None keeps traces ring-only.
        self.span_path = span_path
        self.span_max_bytes = span_max_bytes
        #: ``"host:port"`` of a primary to replicate from.  The service
        #: becomes a read-only replica: it bootstraps and tails the primary
        #: and rejects writes with a ``read_only`` error.
        self.replica_of = replica_of
        #: Long-poll bound (ms) the replica's tail requests ask the primary
        #: to wait when the replica is caught up.
        self.repl_wait_ms = repl_wait_ms
        #: Replica lag (in store versions) beyond which ``/healthz`` turns
        #: 503; None disables lag-based health (connectivity still counts).
        self.repl_max_lag = repl_max_lag
        #: Seconds a replica may be without a successful tail poll before
        #: ``/healthz`` turns 503.  While disconnected the reported lag is
        #: the *last known* value, not the current one, so a dead tail must
        #: not hide behind a small stale lag; None disables the check.
        self.repl_disconnect_grace = repl_disconnect_grace
        #: How long (ms) a read carrying ``min_version`` may wait for this
        #: store to catch up before failing with ``replica_stale``.
        self.version_wait_ms = version_wait_ms
        #: Default evaluation backend for requests that carry no explicit
        #: ``method``: ``columnar`` (int-encoded kernels + CSR/bitset RPQ)
        #: or ``native`` (the tuple-set walker).  See docs/ENGINE.md.
        if engine not in ("native", "columnar"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        #: Default per-subscription outbound queue bound and overflow
        #: policy (``resync`` or ``disconnect``); per-subscribe overrides
        #: via the ``queue_max``/``policy`` request fields.
        from repro.subs import OVERFLOW_POLICIES

        if sub_policy not in OVERFLOW_POLICIES:
            raise ValueError(f"unknown overflow policy {sub_policy!r}")
        self.sub_queue_max = int(sub_queue_max)
        self.sub_policy = sub_policy


class QueryService:
    """The synchronous request executor over one :class:`HAMStore`."""

    def __init__(self, store=None, config=None, metrics=None):
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.durability = None
        if self.config.replica_of and self.config.data_dir:
            raise StoreError(
                "replica mode is incompatible with --data-dir: a replica's "
                "durable history is the primary's WAL, not its own"
            )
        if self.config.data_dir:
            from repro.persist import DurabilityManager, PersistenceConfig

            self.durability = DurabilityManager(
                PersistenceConfig(
                    self.config.data_dir,
                    fsync=self.config.fsync,
                    fsync_interval=self.config.fsync_interval,
                    segment_bytes=self.config.segment_bytes,
                    checkpoint_every=self.config.checkpoint_every,
                    keep_checkpoints=self.config.keep_checkpoints,
                ),
                metrics=self.metrics,
            )
            # Recovery happens before the caches/views attach below, so
            # every commit subscriber starts against the recovered graph.
            self.store = self.durability.recover(store=store)
        else:
            self.store = store if store is not None else HAMStore()
        # Node identity: stable (persisted next to epoch.json) when durable,
        # random per boot otherwise.  It prefixes request ids so ids from
        # different nodes never collide in aggregated logs, tags every span
        # this node contributes to a distributed trace, and shows up in
        # stats / healthz / log records.
        self.node_id = obs.load_or_create_node_id(self.config.data_dir)
        logs.set_node_prefix(self.node_id)
        self.sampler = obs.RateSampler(self.config.trace_sample)
        self.span_sink = (
            obs.SpanSink(self.config.span_path, self.config.span_max_bytes)
            if self.config.span_path
            else None
        )
        self.plans = PreparedQueryCache(self.config.plan_cache_size)
        self.results = ResultCache(self.config.result_cache_size)
        self.traces = obs.TraceRing(self.config.trace_ring_size)
        self.slowlog = SlowQueryLog(
            threshold_ms=self.config.slow_ms,
            capacity=self.config.slowlog_capacity,
            path=self.config.slowlog_path,
        )
        # Per-predicate store statistics (fact counts, churn, view
        # maintenance cost) are published into the exposition registry as
        # scrape-time collectors — no bookkeeping on the request path.
        self.metrics.exposition.collector(self._store_families)
        self._detach = self.results.attach(self.store)
        # Live subscriptions: shared maintained views fanned out as delta
        # frames over client connections (docs/SUBSCRIPTIONS.md).  Works on
        # replicas too — apply_replicated dispatches commit hooks, so a
        # replica is a natural fanout tier for watchers.
        from repro.subs import SubscriptionManager

        self.subs = SubscriptionManager(
            self.store,
            metrics=self.metrics,
            queue_max=self.config.sub_queue_max,
            policy=self.config.sub_policy,
        )
        self.metrics.exposition.collector(self.subs.metric_families)
        self._views = None  # lazily-created ViewManager
        # One relational encoding of the graph per store version, shared by
        # all plans evaluated at that version (engines copy it, never
        # mutate it).
        self._edb_version = None
        self._edb = None
        self._edb_lock = threading.Lock()
        # Replication: every service can act as a replication source (an
        # in-memory primary serves tails from the store's retained log; a
        # durable one also serves bootstrap checkpoints and WAL history).
        # With replica_of set, a ReplicaApplier marks the store read-only
        # and keeps it converged with the primary; it is created here but
        # started by the network server (or explicitly, in tests).
        from repro.replication import ReplicaApplier, ReplicationSource

        self.replication = ReplicationSource(self.store, self.durability)
        self.applier = None
        if self.config.replica_of:
            from repro.replication.router import parse_address

            primary_host, primary_port = parse_address(self.config.replica_of)
            self.applier = ReplicaApplier(
                self.store,
                primary_host,
                primary_port,
                wait_ms=self.config.repl_wait_ms,
                traces=self.traces,
                sampler=self.sampler,
                node_id=self.node_id,
            )
            self.applier.on_rebootstrap(self._on_rebootstrap)
        # Promotion (repro promote) flips a replica into a writable primary
        # under a fresh epoch; the lock serializes concurrent promote ops.
        self._promote_lock = threading.Lock()
        self._promotion = None

    def _on_rebootstrap(self, *_args):
        """A re-bootstrap may regress the store version; every version-stamped
        cache must drop its entries or risk serving a *future* stamp as
        current."""
        self.results.clear()
        with self._edb_lock:
            self._edb_version = None
            self._edb = None
        # Subscribers hold version-stamped materialized state; after a
        # regression they must be re-seeded, not fed deltas.
        self.subs.resync_all()
        self.metrics.incr("replication.rebootstraps")

    # ------------------------------------------------------------- execute

    def execute(self, message, sink=None):
        """Execute one decoded request; returns the ``ok`` response body.

        Raises the service error taxonomy on failure; the caller (server
        or test) turns exceptions into failure responses.  *sink* is the
        connection's push-frame outlet (see :mod:`repro.subs`); only the
        ``subscribe``/``unsubscribe`` ops use it.

        Distributed tracing happens here: a request carrying a ``trace``
        context is *adopted* (its trace id becomes the correlation id and
        the sender's sampling decision is honored); without one, the local
        head sampler decides.  A sampled request runs under a full span
        tree that lands in the trace ring (queryable via ``trace_get``)
        and the span sink.
        """
        op = message.get("op")
        started = time.perf_counter()
        self.metrics.request_started()
        phases = []
        # Slow-request context: the op handlers drop the version, cache
        # disposition, fingerprint and (when tracing ran) the span tree in
        # here so the finally block can build a slowlog entry.
        ctx = {}
        rid_token = None
        tc_token = None
        tc = trace_context.current()
        if tc is None:
            wire = message.get("trace")
            if wire is not None:
                tc = trace_context.TraceContext.from_wire(wire)
        # Every request runs under a correlation ID; the network server
        # binds one in the worker thread (adopting the trace id when the
        # request carries a context), so this only assigns for direct
        # in-process callers (tests, benchmarks, the shell).
        if logs.get_request_id() is None:
            rid_token = logs.set_request_id(
                tc.trace_id if tc is not None else logs.new_request_id()
            )
        if tc is None and self.sampler.enabled and self.sampler.sample():
            # Locally-originated sampled trace: the request id doubles as
            # the trace id, so logs and the trace share one handle.
            tc = trace_context.TraceContext(logs.get_request_id(), None, True)
        if tc is not None:
            tc_token = trace_context.set_current(tc)
        tr = None
        try:
            if tc is not None and tc.sampled:
                with obs.tracing(
                    "request", context=tc, op=op, node=self.node_id
                ) as tr:
                    body = self._dispatch(op, message, phases, ctx, sink)
            else:
                body = self._dispatch(op, message, phases, ctx, sink)
            if tc is not None:
                body.setdefault("trace_id", tc.trace_id)
            return body
        finally:
            elapsed = time.perf_counter() - started
            elapsed_ms = elapsed * 1000.0
            self.metrics.request_completed(op, elapsed, phases)
            trace_id = tc.trace_id if tc is not None else logs.get_request_id()
            if tr is not None:
                ctx["trace"] = tr.root
                self._record_trace(op, elapsed_ms, ctx, trace_id)
            if self.slowlog.should_record(elapsed_ms):
                self._record_slow(op, elapsed_ms, ctx, trace_id)
                if tr is None and self.span_sink is not None and ctx.get("trace") is not None:
                    # Always-sample-on-slow: head sampling skipped this
                    # request, but the slowlog armed a trace on the miss
                    # path and it crossed the threshold — export it.
                    self._export_slow_trace(op, elapsed_ms, ctx, trace_id)
            if tc_token is not None:
                trace_context.reset_current(tc_token)
            if rid_token is not None:
                logs.reset_request_id(rid_token)

    def _dispatch(self, op, message, phases, ctx, sink):
        """Route one decoded request to its op handler."""
        if op == "ping":
            return {"result": {"pong": True}, "version": self.store.version}
        if op == "stats":
            include_histograms = message.get("include_histograms", False)
            if not isinstance(include_histograms, bool):
                raise ProtocolError(
                    "'include_histograms' must be a boolean, "
                    f"got {include_histograms!r}"
                )
            return {
                "result": self.stats(include_histograms=include_histograms),
                "version": self.store.version,
            }
        if op == "update":
            return self._execute_update(message, ctx)
        if op in _QUERY_OPS:
            return self._execute_query(op, message, phases, ctx)
        if op in ("explain", "profile"):
            return self._execute_explain(message)
        if op == "checkpoint":
            return self._execute_checkpoint()
        if op == "slowlog":
            return self._execute_slowlog(message)
        if op == "trace_get":
            return self._execute_trace_get(message)
        if op == "cluster_stats":
            raise ProtocolError(
                "op 'cluster_stats' is answered by the router, not by a "
                "single node; send it to a repro route endpoint"
            )
        if op == "repl_bootstrap":
            return {
                "result": self.replication.bootstrap(),
                "version": self.store.version,
            }
        if op == "repl_tail":
            return self._execute_repl_tail(message)
        if op == "promote":
            return {"result": self.promote(), "version": self.store.version}
        if op == "subscribe":
            return self._execute_subscribe(message, sink)
        if op == "unsubscribe":
            return self._execute_unsubscribe(message, sink)
        raise ProtocolError(f"unknown op {op!r}")

    def _execute_repl_tail(self, message):
        from_version = message.get("from_version")
        if isinstance(from_version, bool) or not isinstance(from_version, int):
            raise ProtocolError(
                f"op 'repl_tail' needs an integer 'from_version', got {from_version!r}"
            )
        body = self.replication.tail(
            from_version,
            max_records=message.get("max_records"),
            wait_ms=message.get("wait_ms", 0),
        )
        return {"result": body, "version": self.store.version}

    def _execute_subscribe(self, message, sink):
        """Register a live subscription; the response carries the initial
        snapshot, subsequent ``delta`` frames arrive through *sink*."""
        from repro.errors import SubscriptionError

        if sink is None:
            raise SubscriptionError(
                "subscriptions need a streaming connection; this entry point "
                "has no push channel"
            )
        target = message.get("target", "graphlog")
        if target not in _QUERY_OPS:
            raise ProtocolError(
                f"'target' must be one of {', '.join(_QUERY_OPS)}, got {target!r}"
            )
        text = message.get("query")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("op 'subscribe' needs a non-empty 'query' string")
        allow_fallback = message.get("allow_fallback", False)
        if not isinstance(allow_fallback, bool):
            raise ProtocolError(
                f"'allow_fallback' must be a boolean, got {allow_fallback!r}"
            )
        self._await_min_version(message)
        params = self._request_params(message)
        plan = self.plans.get(target, text)
        sub, snapshot, version = self.subs.subscribe(
            plan,
            params,
            sink,
            queue_max=message.get("queue_max"),
            policy=message.get("policy"),
            allow_fallback=allow_fallback,
        )
        view = sub.view
        return {
            "result": {
                "subscription": sub.id,
                "snapshot": {
                    name: protocol.rows_to_wire(rows)
                    for name, rows in sorted(snapshot.items())
                },
                "predicates": sorted(view.predicates),
                "mode": view.mode,
                "fallback_reason": view.fallback_reason,
                "policy": sub.policy,
                "queue_max": sub.queue_max,
            },
            "version": version,
        }

    def _execute_unsubscribe(self, message, sink):
        from repro.errors import SubscriptionError

        sub_id = message.get("subscription")
        if isinstance(sub_id, bool) or not isinstance(sub_id, int):
            raise ProtocolError(
                f"op 'unsubscribe' needs an integer 'subscription', got {sub_id!r}"
            )
        if sink is None:
            raise SubscriptionError(
                "unsubscribe must arrive on the subscription's own connection"
            )
        self.subs.unsubscribe(sub_id, sink)
        return {
            "result": {"unsubscribed": sub_id},
            "version": self.store.version,
        }

    def promote(self):
        """Flip this replica into a writable primary under a fresh epoch.

        An *operator* action (``repro promote``), not a consensus protocol:
        the caller is asserting the old primary is dead (or fenced off).
        Ordering matters — the tail applier is stopped before anything
        else, so no replicated record can land mid-promotion; a fresh epoch
        is minted *before* writes are accepted, so the very first
        post-promotion commit is already on the new history line and every
        downstream consumer (tailing replicas of this server, the rejoining
        old primary) re-bootstraps off version arithmetic it cannot trust.
        """
        with self._promote_lock:
            if self.applier is None:
                raise ProtocolError(
                    "cannot promote: this server is not a replica"
                    + (
                        f" (already promoted from {self._promotion['promoted_from']})"
                        if self._promotion
                        else ""
                    )
                )
            applier = self.applier
            old_primary = applier.primary_address
            applier.stop()
            self.applier = None
            epoch = new_epoch()
            self.store.set_epoch(epoch)
            self.store.set_read_only(False)
            self.config.replica_of = None
            self._promotion = {
                "promoted": True,
                "promoted_from": old_primary,
                "applied_version": self.store.version,
                "epoch": epoch,
            }
            self.metrics.incr("replication.promotions")
            logger.warning(
                "promoted to primary at version %d under epoch %s "
                "(was replicating from %s)",
                self.store.version,
                epoch,
                old_primary,
            )
            return dict(self._promotion)

    def _await_min_version(self, message):
        """Session-consistency gate: a read carrying ``min_version`` waits
        (bounded) for this store to reach it, else fails ``replica_stale``
        so a router can redirect — read-your-writes through replicas."""
        min_version = message.get("min_version")
        if min_version is None:
            return
        if isinstance(min_version, bool) or not isinstance(min_version, int):
            raise ProtocolError(
                f"'min_version' must be a non-negative integer, got {min_version!r}"
            )
        if min_version <= self.store.version:
            return
        wait_ms = self.config.version_wait_ms or 0
        if not self.store.wait_for_version(min_version, wait_ms / 1000.0):
            self.metrics.incr("replication.stale_reads")
            raise ReplicaStale(
                f"store is at version {self.store.version}, read requires "
                f"{min_version} (waited {wait_ms}ms)"
            )

    def _request_params(self, message):
        """Evaluation parameters for one request, backend default applied.

        ``method`` defaults to the configured engine (``columnar`` or
        ``native``) when the client sends none; the default lands in the
        params dict *before* the result-cache key is computed, so answers
        produced by different backends never share a cache entry.
        """
        params = {k: message[k] for k in _PARAM_FIELDS if message.get(k) is not None}
        if "method" not in params:
            params["method"] = self.config.engine
        return params

    def _execute_query(self, op, message, phases, ctx):
        text = message.get("query")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError(f"op {op!r} needs a non-empty 'query' string")
        self._await_min_version(message)
        params = self._request_params(message)
        max_rows = message.get("max_rows", self.config.max_rows)
        max_bytes = message.get("max_bytes", self.config.max_bytes)

        # Phase samples collect into *phases* and land in the registry in
        # one batch with the request's closing bookkeeping — the hot path
        # pays perf_counter reads here, never extra lock acquisitions.
        t0 = time.perf_counter()
        plan = self.plans.get(op, text)
        t1 = time.perf_counter()
        version, graph = self.store.snapshot_versioned()
        key = result_key(plan.fingerprint, params)
        ctx["version"] = version
        ctx["fingerprint"] = plan.fingerprint

        cached = self.results.get(key, version)
        t2 = time.perf_counter()
        phases.append(("plan", t1 - t0))
        phases.append(("cache_lookup", t2 - t1))
        if cached is not None:
            payload, encoded_size = cached
            self.metrics.incr("result_cache.hits")
            ctx["cache"] = "hit"
            self._check_budgets(payload["count"], encoded_size, max_rows, max_bytes)
            return {"result": payload, "version": version, "cache": "hit"}

        self.metrics.incr("result_cache.misses")
        ctx["cache"] = "miss"
        edb = self._edb_for(version, graph)
        active = obs.tracer()
        if active.enabled:
            # A sampled request already runs under the request-level tracer;
            # nest the evaluation span there instead of starting a second
            # tree.
            with active.span(
                "evaluate", version=version, fingerprint=plan.fingerprint
            ):
                relations = plan.evaluate(graph, edb, params)
        elif self.slowlog.enabled:
            # Only the miss path is traced: a cache hit does no evaluation
            # work, so it cannot be meaningfully slow, and tracing it would
            # tax the ~12µs hot path the result cache exists to protect.
            with obs.tracing(op, version=version, fingerprint=plan.fingerprint) as tr:
                with tr.span("evaluate"):
                    relations = plan.evaluate(graph, edb, params)
            ctx["trace"] = tr.root
        else:
            relations = plan.evaluate(graph, edb, params)
        t3 = time.perf_counter()
        total = sum(len(rows) for rows in relations.values())
        payload = {
            "relations": {
                name: protocol.rows_to_wire(rows) for name, rows in sorted(relations.items())
            },
            "count": total,
        }
        encoded_size = len(protocol.encode(payload))
        phases.append(("evaluate", t3 - t2))
        phases.append(("encode", time.perf_counter() - t3))
        self._check_budgets(total, encoded_size, max_rows, max_bytes)
        self.results.put(key, (payload, encoded_size), version, plan.footprint)
        return {"result": payload, "version": version, "cache": "miss"}

    def _execute_explain(self, message):
        """Run a query under full tracing; returns the span tree, not rows.

        Both caches are bypassed: a fresh plan is prepared so the trace
        covers parse/translate/safety/stratify, and evaluation always runs
        so the trace covers the engine's per-stratum iterations.  The trace
        is recorded in the bounded ring (``stats`` reports ring occupancy)
        and returned inline; ``explain`` adds the rendered ASCII tree,
        ``profile`` returns just the structured form.
        """
        target = message.get("target", "graphlog")
        if target not in _QUERY_OPS:
            raise ProtocolError(
                f"'target' must be one of {', '.join(_QUERY_OPS)}, got {target!r}"
            )
        text = message.get("query")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("op 'explain' needs a non-empty 'query' string")
        self._await_min_version(message)
        params = self._request_params(message)
        version, graph = self.store.snapshot_versioned()
        # explain always traces, whatever the sampler said; when the request
        # carries a distributed context, link this tree under the request's
        # root span so trace_get finds it as part of the same trace.
        ambient = trace_context.current()
        nested = None
        if ambient is not None:
            request_tracer = obs.tracer()
            parent = (
                request_tracer.root.span_id
                if request_tracer.enabled and request_tracer.root is not None
                else ambient.parent_span_id
            )
            nested = trace_context.TraceContext(
                ambient.trace_id, parent, ambient.sampled
            )
        with obs.tracing("explain", context=nested, target=target, version=version) as tr:
            plan = PreparedQuery(target, text)
            with tr.span("evaluate"):
                relations = plan.evaluate(graph, self._edb_for(version, graph), params)
            with tr.span("encode") as enc:
                payload = {
                    name: protocol.rows_to_wire(rows)
                    for name, rows in sorted(relations.items())
                }
                enc.annotate(bytes=len(protocol.encode(payload)))
        root = tr.root
        phases = {child.name: child.elapsed_ms for child in root.children}
        for name, elapsed_ms in phases.items():
            self.metrics.observe_phase(f"explain.{name}", elapsed_ms / 1000.0)
        trace = root.to_dict()
        self.traces.record(
            {
                "target": target,
                "fingerprint": plan.fingerprint,
                "version": version,
                "elapsed_ms": root.elapsed_ms,
                "trace_id": ambient.trace_id if ambient else logs.get_request_id(),
                "request_id": logs.get_request_id(),
                "node_id": self.node_id,
                "trace": trace,
            }
        )
        result = {
            "count": sum(len(rows) for rows in relations.values()),
            "relations": {name: len(rows) for name, rows in sorted(relations.items())},
            "phases": phases,
            "trace": trace,
        }
        if message.get("op", "explain") == "explain":
            result["text"] = root.render().rstrip()
        return {"result": result, "version": version, "cache": "bypass"}

    def _execute_checkpoint(self):
        """Force a durability checkpoint (snapshot + WAL pruning)."""
        if self.durability is None:
            raise ProtocolError(
                "service has no durability; start the server with --data-dir"
            )
        info = self.durability.checkpoint()
        self.metrics.incr("checkpoints.requested")
        return {"result": info, "version": self.store.version}

    def _execute_slowlog(self, message):
        """Return the most recent slow-query records (newest first)."""
        limit = message.get("limit")
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int) or limit < 0
        ):
            raise ProtocolError(f"'limit' must be a non-negative integer, got {limit!r}")
        return {
            "result": {
                "entries": self.slowlog.snapshot(limit),
                "stats": self.slowlog.stats(),
            },
            "version": self.store.version,
        }

    def _record_slow(self, op, elapsed_ms, ctx, trace_id=None):
        """Capture one over-threshold request into the slow-query log."""
        entry = {
            "request_id": logs.get_request_id(),
            "trace_id": trace_id,
            "op": op,
            "elapsed_ms": round(elapsed_ms, 3),
            "threshold_ms": self.slowlog.threshold_ms,
            "version": ctx.get("version"),
            "cache": ctx.get("cache"),
            "fingerprint": ctx.get("fingerprint"),
        }
        root = ctx.get("trace")
        if root is not None:
            entry["trace"] = root.to_dict()
        self.slowlog.record(entry)
        self.metrics.incr("slowlog.recorded")
        logger.warning(
            "slow %s request took %.1fms (threshold %.1fms)",
            op,
            elapsed_ms,
            self.slowlog.threshold_ms,
            extra={"op": op, "elapsed_ms": round(elapsed_ms, 3)},
        )

    def _record_trace(self, op, elapsed_ms, ctx, trace_id):
        """Land one sampled request's finished span tree: trace ring (for
        ``trace_get``) plus the span sink when configured."""
        entry = {
            "trace_id": trace_id,
            "request_id": logs.get_request_id(),
            "node_id": self.node_id,
            "op": op,
            "elapsed_ms": round(elapsed_ms, 3),
            "version": ctx.get("version"),
            "spans": obs.flatten_span_tree(ctx["trace"], node_id=self.node_id),
        }
        self.traces.record(entry)
        self.metrics.incr("trace.sampled")
        if self.span_sink is not None:
            if self.span_sink.export(entry):
                self.metrics.incr("trace.exported")
            else:
                self.metrics.incr("trace.export_errors")

    def _export_slow_trace(self, op, elapsed_ms, ctx, trace_id):
        """Export the slowlog-armed trace of an *unsampled* slow request."""
        entry = {
            "trace_id": trace_id,
            "request_id": logs.get_request_id(),
            "node_id": self.node_id,
            "op": op,
            "elapsed_ms": round(elapsed_ms, 3),
            "version": ctx.get("version"),
            "slow": True,
            "spans": obs.flatten_span_tree(ctx["trace"], node_id=self.node_id),
        }
        self.metrics.incr("trace.slow_sampled")
        if self.span_sink.export(entry):
            self.metrics.incr("trace.exported")
        else:
            self.metrics.incr("trace.export_errors")

    def _execute_trace_get(self, message):
        """Return this node's spans for one trace id.

        Primary source is the bounded trace ring; when the ring has
        evicted the id, fall back to the slow-query log (whose entries
        carry their request's trace id and span tree) so slow traces stay
        reachable longer than the ring's churn window.
        """
        trace_id = message.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ProtocolError(
                f"op 'trace_get' needs a non-empty 'trace_id' string, got {trace_id!r}"
            )
        spans = []
        source = None
        for entry in self.traces.find(trace_id):
            entry_spans = entry.get("spans")
            if entry_spans is None and entry.get("trace") is not None:
                entry_spans = obs.flatten_span_tree(
                    entry["trace"], node_id=self.node_id
                )
            spans.extend(entry_spans or [])
        if spans:
            source = "ring"
        else:
            for entry in self.slowlog.snapshot():
                if trace_id in (entry.get("trace_id"), entry.get("request_id")):
                    root = entry.get("trace")
                    if root is not None:
                        spans.extend(
                            obs.flatten_span_tree(root, node_id=self.node_id)
                        )
                        source = "slowlog"
        return {
            "result": {
                "trace_id": trace_id,
                "node_id": self.node_id,
                "found": bool(spans),
                "source": source,
                "spans": spans,
            },
            "version": self.store.version,
        }

    def _execute_update(self, message, ctx):
        if self.store.read_only:
            primary = self.applier.primary_address if self.applier else None
            hint = f"; send writes to the primary at {primary}" if primary else ""
            raise ReadOnlyError(
                f"this service is a read-only replica{hint}", primary=primary
            )
        nodes = message.get("nodes") or []
        edges = message.get("edges") or []
        remove_nodes = message.get("remove_nodes") or []
        remove_edges = message.get("remove_edges") or []
        if not nodes and not edges and not remove_nodes and not remove_edges:
            raise ProtocolError(
                "op 'update' needs 'nodes', 'edges', 'remove_nodes' and/or "
                "'remove_edges'"
            )
        active = obs.tracer()
        if active.enabled:
            with active.span("commit", nodes=len(nodes), edges=len(edges)):
                self._apply_update(nodes, edges, remove_nodes, remove_edges)
        elif self.slowlog.enabled:
            with obs.tracing("update", nodes=len(nodes), edges=len(edges)) as tr:
                with tr.span("commit"):
                    self._apply_update(nodes, edges, remove_nodes, remove_edges)
            ctx["trace"] = tr.root
        else:
            self._apply_update(nodes, edges, remove_nodes, remove_edges)
        ctx["version"] = self.store.version
        self.metrics.incr("updates.committed")
        result = {"added_nodes": len(nodes), "added_edges": len(edges)}
        if remove_nodes or remove_edges:
            result["removed_nodes"] = len(remove_nodes)
            result["removed_edges"] = len(remove_edges)
        return {"result": result, "version": self.store.version}

    def _apply_update(self, nodes, edges, remove_nodes=(), remove_edges=()):
        session = self.store.session()
        with session.transaction() as txn:
            for entry in nodes:
                if isinstance(entry, (list, tuple)):
                    if not 1 <= len(entry) <= 2:
                        raise ProtocolError(
                            f"node entries are value or [value, label]; got {entry!r}"
                        )
                    node = entry[0]
                    label = entry[1] if len(entry) == 2 else None
                else:
                    node, label = entry, None
                txn.add_node(node, label)
            for entry in edges:
                try:
                    source, label, target = entry
                except (TypeError, ValueError):
                    raise ProtocolError(
                        f"edge entries are [source, label, target]; got {entry!r}"
                    ) from None
                txn.add_edge(source, target, label)
            # Removals after additions, so one transaction can atomically
            # replace an edge (add the new one, drop the old).
            for entry in remove_edges:
                try:
                    source, label, target = entry
                except (TypeError, ValueError):
                    raise ProtocolError(
                        f"edge entries are [source, label, target]; got {entry!r}"
                    ) from None
                txn.remove_edge(source, target, label)
            for entry in remove_nodes:
                if isinstance(entry, (list, tuple)):
                    raise ProtocolError(
                        f"remove_nodes entries are bare values; got {entry!r}"
                    )
                txn.remove_node(entry)

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _check_budgets(rows, encoded_size, max_rows, max_bytes):
        if max_rows is not None and rows > max_rows:
            raise ResultTooLarge(f"result has {rows} rows, limit is {max_rows}")
        if max_bytes is not None and encoded_size > max_bytes:
            raise ResultTooLarge(
                f"result encodes to {encoded_size} bytes, limit is {max_bytes}"
            )

    def _edb_for(self, version, graph):
        from repro.graphs.bridge import database_from_graph

        with self._edb_lock:
            if self._edb_version == version:
                return self._edb
        edb = database_from_graph(graph)
        with self._edb_lock:
            # Keep the newest version on a race; both encodings are valid
            # for their own version, and we return ours regardless.
            if self._edb_version is None or version >= self._edb_version:
                self._edb_version = version
                self._edb = edb
        return edb

    @property
    def views(self):
        """The store's :class:`~repro.ham.views.ViewManager`, created lazily
        (registering it subscribes to commits, so don't until needed)."""
        if self._views is None:
            from repro.ham.views import ViewManager

            self._views = ViewManager(self.store)
        return self._views

    def register_view(self, name, query):
        """Register a materialized view kept in sync with commits."""
        return self.views.register(name, query)

    def stats(self, include_histograms=False):
        result_cache = self.results.stats()
        # Mirror the commit-driven counters into the metrics registry so one
        # snapshot carries them alongside request counters.
        self.metrics.set_counter(
            "result_cache.delta_reuse_hits", result_cache["delta_reuse_hits"]
        )
        if self._views is not None:
            totals = self._views.stats()["totals"]
            self.metrics.set_counter(
                "views.view_maintenance_ms", totals["view_maintenance_ms"]
            )
            self.metrics.set_counter("views.overdeleted", totals["overdeleted"])
            self.metrics.set_counter("views.rederived", totals["rederived"])
        store_stats = self.store.stats()
        self.metrics.set_counter(
            "store.subscriber_failures", store_stats["subscriber_failures"]
        )
        traces = self.traces.stats()
        traces["sample_rate"] = self.sampler.rate
        if self.span_sink is not None:
            traces["sink"] = self.span_sink.stats()
        stats = {
            "engine": self.config.engine,
            "node_id": self.node_id,
            "metrics": self.metrics.snapshot(include_histograms=include_histograms),
            "plan_cache": self.plans.stats(),
            "result_cache": result_cache,
            "traces": traces,
            "slowlog": self.slowlog.stats(),
            "store": store_stats,
            "replication": self.replication_status(),
            "subs": self.subs.stats(),
        }
        if self._views is not None:
            stats["views"] = self._views.stats()
        return stats

    def replication_status(self):
        """One document describing this node's replication role.

        A replica reports its applier state (``role: replica``, applied
        version, lag) with the local tail-serving counters nested under
        ``source``; a primary reports the source counters directly.
        """
        source = self.replication.stats()
        if self.applier is None:
            if self._promotion is not None:
                source = dict(source)
                source["promotion"] = dict(self._promotion)
            return source
        status = self.applier.status()
        status["source"] = source
        return status

    def health(self):
        """The ``/healthz`` document: ``status`` is ``"ok"`` or ``"degraded"``.

        Degraded means the durability layer reports trouble — it is closed
        (writes would fail) or recovery truncated a torn WAL tail.  A
        purely in-memory service is always ok.
        """
        doc = {
            "status": "ok",
            "node_id": self.node_id,
            "version": self.store.version,
            "in_flight": self.metrics.in_flight,
        }
        if self.durability is not None:
            info = self.durability.health_info()
            doc["durability"] = info
            if not info["ok"]:
                doc["status"] = "degraded"
        if self.applier is not None:
            status = self.applier.status()
            doc["replication"] = status
            max_lag = self.config.repl_max_lag
            lag = status["lag_versions"]
            if not status["bootstrapped"]:
                doc["status"] = "degraded"
            elif max_lag is not None and (lag is None or lag > max_lag):
                doc["status"] = "degraded"
            if not status["tail_connected"]:
                # While the tail is down, lag_versions is the *last known*
                # lag — the primary may be racing ahead (or be gone).  A
                # short blip is tolerated; past the grace period the
                # replica can no longer vouch for its own staleness.
                grace = self.config.repl_disconnect_grace
                seconds = status["seconds_since_poll"]
                if grace is not None and (seconds is None or seconds > grace):
                    doc["status"] = "degraded"
        return doc

    def prometheus_text(self):
        """The full exposition document served at ``/metrics``."""
        return self.metrics.render_prometheus()

    def _store_families(self):
        """Scrape-time collector: per-predicate store statistics, store
        size gauges, and per-view maintenance cost."""
        predicates = self.store.predicate_stats()
        facts = MetricFamily(
            "repro_store_facts", "gauge", "Committed facts per predicate"
        )
        churn_rows = MetricFamily(
            "repro_store_churn_rows_total",
            "counter",
            "Delta rows inserted+deleted per predicate since start",
        )
        churn_commits = MetricFamily(
            "repro_store_churn_commits_total",
            "counter",
            "Commits whose delta touched each predicate",
        )
        for name, info in sorted(predicates.items()):
            label = {"predicate": name}
            facts.add_sample(info["facts"], label)
            churn_rows.add_sample(info["churn_rows"], label)
            churn_commits.add_sample(info["churn_commits"], label)
        version, graph = self.store.snapshot_versioned()
        families = [
            facts,
            churn_rows,
            churn_commits,
            MetricFamily(
                "repro_store_version", "gauge", "Committed store version"
            ).add_sample(version),
            MetricFamily(
                "repro_store_nodes", "gauge", "Nodes in the committed graph"
            ).add_sample(graph.node_count()),
            MetricFamily(
                "repro_store_edges", "gauge", "Edges in the committed graph"
            ).add_sample(graph.edge_count()),
        ]
        families.extend(self._replication_families())
        if self._views is not None:
            cost = MetricFamily(
                "repro_view_maintenance_seconds_total",
                "counter",
                "Cumulative maintenance time per materialized view",
            )
            updates = MetricFamily(
                "repro_view_updates_total",
                "counter",
                "Incremental maintenance runs per materialized view",
            )
            for name, view_stats in self._views.stats()["views"].items():
                label = {"view": name}
                cost.add_sample(view_stats["maintenance_ms"] / 1000.0, label)
                updates.add_sample(view_stats["incremental_updates"], label)
            families.extend([cost, updates])
        return families

    def _replication_families(self):
        """Scrape-time collector: replication role, lag and throughput."""
        source = self.replication.stats()
        families = [
            MetricFamily(
                "repro_repl_records_shipped_total",
                "counter",
                "Commit records shipped to tailing replicas",
            ).add_sample(source["records_shipped"]),
            MetricFamily(
                "repro_repl_tail_requests_total",
                "counter",
                "repl_tail requests served",
            ).add_sample(source["tail_requests"]),
            MetricFamily(
                "repro_repl_bootstraps_served_total",
                "counter",
                "repl_bootstrap documents served",
            ).add_sample(source["bootstraps_served"]),
            MetricFamily(
                "repro_repl_resets_total",
                "counter",
                "Tails answered with a reset (replica must re-bootstrap)",
            ).add_sample(source["resets_signaled"]),
            MetricFamily(
                "repro_repl_epoch",
                "gauge",
                "The replication epoch naming this store's history line",
            ).add_sample(1, {"epoch": self.store.epoch}),
            MetricFamily(
                "repro_repl_promoted",
                "gauge",
                "1 once this server has been promoted from replica to primary",
            ).add_sample(1 if self._promotion is not None else 0),
        ]
        if self.applier is not None:
            status = self.applier.status()
            lag = status["lag_versions"]
            families.extend(
                [
                    MetricFamily(
                        "repro_repl_lag_versions",
                        "gauge",
                        "Store versions this replica is behind its primary",
                    ).add_sample(lag if lag is not None else -1),
                    MetricFamily(
                        "repro_repl_applied_version",
                        "gauge",
                        "Last primary commit version applied locally",
                    ).add_sample(status["applied_version"]),
                    MetricFamily(
                        "repro_repl_connected",
                        "gauge",
                        "1 when the replica's tail connection to the primary is up",
                    ).add_sample(1 if status["connected"] else 0),
                    MetricFamily(
                        "repro_repl_records_applied_total",
                        "counter",
                        "Commit records applied from the primary",
                    ).add_sample(status["records_applied"]),
                    MetricFamily(
                        "repro_repl_tail_errors_total",
                        "counter",
                        "Tail/bootstrap attempts that failed (connection or apply)",
                    ).add_sample(status["tail_errors"]),
                    MetricFamily(
                        "repro_repl_seconds_since_poll",
                        "gauge",
                        "Seconds since the last successful tail poll (-1 before one)",
                    ).add_sample(
                        status["seconds_since_poll"]
                        if status["seconds_since_poll"] is not None
                        else -1
                    ),
                    MetricFamily(
                        "repro_repl_epoch_rebootstraps_total",
                        "counter",
                        "Re-bootstraps triggered by a primary epoch change",
                    ).add_sample(status["epoch_rebootstraps"]),
                ]
            )
        return families

    def close(self):
        """Stop replication, detach the commit hook, and flush/close
        durability (idempotent)."""
        if self.applier is not None:
            self.applier.stop()
        self.subs.close()
        if self._detach is not None:
            self._detach()
            self._detach = None
        if self.durability is not None:
            self.durability.close()


class _ConnectionSink:
    """One connection's push outlet: commit threads poke it thread-safely,
    the connection's sender task wakes and drains the subscription queues."""

    __slots__ = ("_loop", "event")

    def __init__(self, loop):
        self._loop = loop
        self.event = asyncio.Event()

    def notify(self):
        try:
            self._loop.call_soon_threadsafe(self.event.set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass


class ServiceServer:
    """Asyncio JSON-lines TCP front for a :class:`QueryService`."""

    def __init__(self, service=None, store=None, config=None):
        self.config = config or (service.config if service else ServiceConfig())
        self.service = service or QueryService(store=store, config=self.config)
        self._server = None
        self._executor = None
        self._thread = None
        self._loop = None
        self._telemetry = None
        self.host = self.config.host
        self.port = self.config.port
        #: Bound telemetry port once started (None when not configured).
        self.metrics_port = None

    # --------------------------------------------------------------- async

    async def start(self):
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-service"
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_REQUEST_BYTES,
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        if self.config.metrics_port is not None and self._telemetry is None:
            from repro.obs.export import TelemetryHTTPServer

            self._telemetry = TelemetryHTTPServer(
                self.service.prometheus_text,
                self.service.health,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            ).start()
            self.metrics_port = self._telemetry.port
        applier = self.service.applier
        if applier is not None and not applier.running:
            applier.start()
        return self

    async def serve_forever(self):
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self):
        if self._telemetry is not None:
            self._telemetry.stop()
            self._telemetry = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            # cancel_futures: requests still queued behind the workers must
            # not start executing after shutdown — a late-running execute()
            # would decrement in_flight on a registry the service considers
            # quiesced, dragging the gauge below zero.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def _handle_connection(self, reader, writer):
        # Every connection gets a push sink and a sender task: request
        # handling stays a serial read→execute→respond loop, while delta
        # frames (enqueued by commit threads) are drained and written
        # whenever the sink is poked.  Each frame/response is written with
        # a single write() call — no await between encode and write — so
        # the two writers can never interleave inside one JSON line.
        sink = _ConnectionSink(asyncio.get_running_loop())
        sender = asyncio.create_task(self._send_frames(sink, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None, ProtocolError("request line too long")
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_request(line, sink)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels in-flight handler tasks (a replica's tail
            # long-poll is routinely parked here); finishing normally keeps
            # asyncio's connection callback from logging the cancellation.
            pass
        finally:
            sender.cancel()
            try:
                await sender
            except asyncio.CancelledError:
                pass
            self.service.subs.drop_sink(sink)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass

    async def _send_frames(self, sink, writer):
        """Drain-and-write loop for one connection's push frames."""
        try:
            while True:
                await sink.event.wait()
                sink.event.clear()
                frames, disconnect = self.service.subs.drain(sink)
                for frame in frames:
                    writer.write(protocol.encode(frame))
                if frames:
                    await writer.drain()
                if disconnect:
                    # The 'disconnect' overflow policy: the closed frame has
                    # been written; drop the connection.
                    writer.close()
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _handle_request(self, line, sink=None):
        request_id = None
        started = time.perf_counter()
        try:
            message = protocol.decode_request(line)
            request_id = message.get("id")
            timeout = message.get("timeout", self.config.timeout)
            loop = asyncio.get_running_loop()
            submitted = time.perf_counter()
            # The correlation ID is minted on the event loop but must be
            # bound inside the worker closure: contextvars do not propagate
            # into run_in_executor threads on their own.  A request carrying
            # a trace context is *adopted*: its trace id becomes the
            # correlation id instead of a freshly minted one, so one grep
            # follows the request across every node it touched.
            trace_doc = message.get("trace")
            if isinstance(trace_doc, dict) and trace_doc.get("trace_id"):
                rid = trace_doc["trace_id"]
            else:
                rid = logs.new_request_id()

            def run():
                token = logs.set_request_id(rid)
                try:
                    # Time spent queued behind busy workers, measured from
                    # the worker thread the moment it picks the request up.
                    self.service.metrics.observe_phase(
                        "queue_wait", time.perf_counter() - submitted
                    )
                    return self.service.execute(message, sink=sink)
                finally:
                    logs.reset_request_id(token)

            future = loop.run_in_executor(self._executor, run)
            try:
                body = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                self.service.metrics.incr("errors.timeout")
                raise QueryTimeout(
                    f"request exceeded its {timeout}s deadline"
                ) from None
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            return protocol.ok_response(
                request_id,
                body["result"],
                version=body.get("version"),
                elapsed_ms=elapsed_ms,
                cache=body.get("cache"),
                trace_id=body.get("trace_id"),
            )
        except ReproError as exc:
            if not isinstance(exc, QueryTimeout):
                self.service.metrics.incr(f"errors.{getattr(exc, 'code', 'evaluation')}")
            return protocol.error_response(request_id, exc)
        except Exception as exc:  # noqa: BLE001 — a serving loop must not die
            self.service.metrics.incr("errors.internal")
            return protocol.error_response(request_id, exc)

    # ----------------------------------------------------------- threading

    def start_background(self):
        """Run the server on a dedicated event-loop thread; returns self.

        ``self.port`` is the bound port once this returns.  Stop with
        :meth:`stop`.
        """
        if self._thread is not None:
            raise RuntimeError("server already running")
        ready = threading.Event()
        failure = []

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except Exception as exc:  # pragma: no cover - bind errors
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.aclose())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-service-server", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failure:
            self._thread = None
            raise failure[0]
        return self

    def stop(self):
        """Stop a background server started with :meth:`start_background`."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None
        self.service.close()
