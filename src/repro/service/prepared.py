"""Prepared queries: compile once, evaluate many times.

A long-lived server sees the same query text over and over; re-running the
parser, the λ translation, the safety checker, and the stratifier on every
request wastes the work that never changes between requests.  A
:class:`PreparedQuery` performs that whole front half exactly once:

- ``graphlog`` — parse the DSL, validate the graphical query, λ-translate
  to stratified Datalog, safety-check and stratify the program;
- ``datalog`` — parse the program, safety-check and stratify it;
- ``rpq`` — parse the label regular expression and compile its DFA.

The compiled plan is cached in a :class:`PreparedQueryCache` keyed by the
query *fingerprint*: a SHA-256 over the op and the whitespace/comment
normalized query text, so trivially reformatted queries share one plan.
Plans are immutable after preparation and safe to evaluate concurrently.
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict

from repro import obs
from repro.errors import ProtocolError

_COMMENT = re.compile(r"[%#][^\n]*")
_WHITESPACE = re.compile(r"\s+")


def _engine_method(params):
    """Map a request's ``method`` to an Engine method name.

    ``native`` is the service-level name for the tuple-set walker (it also
    turns off the RPQ CSR path); the Engine spells it ``seminaive``.
    """
    method = params.get("method", "seminaive")
    return "seminaive" if method == "native" else method


def normalize(text):
    """Comment-stripped, whitespace-collapsed query text."""
    return _WHITESPACE.sub(" ", _COMMENT.sub(" ", text)).strip()


def fingerprint(op, text):
    """The plan key: SHA-256 over the op and the normalized query text."""
    payload = f"{op}\x00{normalize(text)}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class PreparedQuery:
    """One compiled plan: the parsed/translated/checked form of a query."""

    __slots__ = (
        "op",
        "text",
        "fingerprint",
        "graphical",
        "program",
        "strata",
        "regex",
        "head_predicate",
        "idb_predicates",
        "has_summaries",
        "footprint",
    )

    def __init__(self, op, text):
        self.op = op
        self.text = text
        self.fingerprint = fingerprint(op, text)
        self.graphical = None
        self.program = None
        self.strata = None
        self.regex = None
        self.head_predicate = None
        self.idb_predicates = ()
        self.has_summaries = False
        #: Predicates the plan's answers can depend on — the delta-scoped
        #: result cache keeps entries alive across commits that miss this
        #: set.  None = unknown (every commit invalidates).
        self.footprint = None
        prepare = getattr(self, f"_prepare_{op}", None)
        if prepare is None:
            raise ProtocolError(f"cannot prepare op {op!r}")
        with obs.span("prepare", op=op, fingerprint=self.fingerprint[:12]):
            prepare()

    # ------------------------------------------------------------- prepare

    def _prepare_graphlog(self):
        from repro.core.dsl import parse_graphical_query
        from repro.core.translate import translate, translate_extended
        from repro.datalog.safety import check_program_safety
        from repro.datalog.stratify import stratify

        with obs.span("parse"):
            self.graphical = parse_graphical_query(self.text)
        self.head_predicate = self.graphical.graphs[-1].head_predicate
        self.idb_predicates = tuple(sorted(self.graphical.idb_predicates))
        self.has_summaries = any(g.summaries for g in self.graphical.graphs)
        if self.has_summaries:
            # Aggregate evaluation re-checks its own stratification; keep
            # the extended program for inspection but evaluate through the
            # AggregateEngine at run time.  Footprint stays None (unknown):
            # every commit invalidates cached summary answers.
            self.program = translate_extended(self.graphical)
        else:
            self.program = translate(self.graphical)
            with obs.span("safety"):
                check_program_safety(self.program)
            self.strata = stratify(self.program)
            # All referenced predicates, IDB names included: edge facts
            # committed under an IDB name feed the evaluation's EDB copy.
            self.footprint = frozenset(self.program.predicates)

    def _prepare_datalog(self):
        from repro.datalog.parser import parse_program
        from repro.datalog.safety import check_program_safety
        from repro.datalog.stratify import stratify

        with obs.span("parse"):
            self.program = parse_program(self.text)
        with obs.span("safety"):
            check_program_safety(self.program)
        self.strata = stratify(self.program)
        self.idb_predicates = tuple(sorted(self.program.idb_predicates))
        self.footprint = frozenset(self.program.predicates)

    def _prepare_rpq(self):
        from repro.core.translate import DOMAIN_PREDICATE
        from repro.rpq.automaton import compile_regex
        from repro.rpq.regex import parse_regex

        with obs.span("parse"):
            self.regex = parse_regex(self.text)
        with obs.span("compile_dfa"):
            dfa = compile_regex(self.regex)  # validates eagerly; cheap to recompile
        labels = {label for label, _inverted in self.regex.symbols()}
        if dfa.start in dfa.accept:
            # Nullable path expression: every node answers (v, v), so the
            # result also depends on the node set — the active domain.
            labels.add(DOMAIN_PREDICATE)
        self.footprint = frozenset(labels)

    # ------------------------------------------------------------ evaluate

    def evaluate(self, graph, edb, params):
        """Run the plan against one committed store state.

        ``graph`` is the store's :class:`LabeledMultigraph`, ``edb`` its
        relational encoding (shared across requests at the same version),
        ``params`` the request's evaluation-time parameters.  Returns
        ``{relation_name: set_of_rows}``.
        """
        evaluate = getattr(self, f"_evaluate_{self.op}")
        return evaluate(graph, edb, params or {})

    def _evaluate_graphlog(self, _graph, edb, params):
        from repro.core.engine import GraphLogEngine, prepare_database
        from repro.datalog.engine import Engine

        method = _engine_method(params)
        if self.has_summaries:
            result = GraphLogEngine(method=method).run(self.graphical, edb)
        else:
            prepared = prepare_database(edb)
            result = Engine(method=method, check_safety=False).evaluate(
                self.program, prepared
            )
        predicates = self._requested_predicates(params)
        return {p: set(result.facts(p)) for p in predicates}

    def _evaluate_datalog(self, _graph, edb, params):
        from repro.datalog.engine import Engine

        method = _engine_method(params)
        result = Engine(method=method, check_safety=False).evaluate(self.program, edb)
        predicates = self._requested_predicates(params)
        return {p: set(result.facts(p)) for p in predicates}

    def _evaluate_rpq(self, graph, _edb, params):
        from repro.rpq.evaluate import RPQEvaluator

        # The CSR/bitset path is the default; method=native is the escape
        # hatch back to the per-pair dict walk.
        evaluator = RPQEvaluator(graph, use_csr=params.get("method") != "native")
        source = params.get("source")
        if source is not None:
            targets = evaluator.targets(self.regex, source)
            return {"answers": {(t,) for t in targets}}
        return {"answers": evaluator.pairs(self.regex)}

    def _requested_predicates(self, params):
        predicate = params.get("predicate")
        if predicate is not None:
            if predicate not in self.idb_predicates:
                raise ProtocolError(
                    f"predicate {predicate!r} is not defined by this query; "
                    f"defined: {', '.join(self.idb_predicates)}"
                )
            return (predicate,)
        if self.op == "graphlog":
            return (self.head_predicate,)
        return self.idb_predicates

    def __repr__(self):
        return f"PreparedQuery({self.op}, {self.fingerprint[:12]}...)"


class PreparedQueryCache:
    """Thread-safe LRU cache of compiled plans, keyed by fingerprint."""

    def __init__(self, capacity=256):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._plans = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._plans)

    def get(self, op, text):
        """The cached plan for (op, text), preparing it on first sight."""
        key = fingerprint(op, text)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan
        # Prepare outside the lock: compilation can be slow and must not
        # serialize unrelated requests.  A racing duplicate just overwrites
        # with an identical plan.
        plan = PreparedQuery(op, text)
        with self._lock:
            self.misses += 1
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def clear(self):
        with self._lock:
            self._plans.clear()

    def stats(self):
        with self._lock:
            return {
                "size": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
