"""JSON-lines wire protocol for the query service.

One request per line, one response per line, both UTF-8 JSON objects.

Request::

    {"id": 7, "op": "graphlog", "query": "define ...", ...}

``op`` is one of :data:`OPS`; every other field is the operation's payload
(see :mod:`repro.service.server` for per-op fields).  ``id`` is optional and
echoed back verbatim so pipelined clients can match responses.

Response (success)::

    {"id": 7, "ok": true, "result": {...}, "elapsed_ms": 1.93, "version": 4}

Response (failure)::

    {"id": 7, "ok": false, "error": {"code": "timeout", "message": "..."}}

Error ``code`` values mirror the :mod:`repro.errors` service taxonomy:
``protocol_error``, ``timeout``, ``result_too_large``, ``service_error``
(evaluation-layer failures keep their exception class name in ``kind``).

Push frames
-----------

Subscriptions (:mod:`repro.subs`) add a third message class: asynchronous
server-push *frames* interleaved with responses on the same connection.
A frame is distinguished by its ``"frame"`` key and never carries ``id``
or ``ok``, so clients demultiplex on one field::

    {"frame": "delta", "subscription": 3, "version": 12,
     "inserted": {"reach": [["a","c"]]}, "deleted": {}}
    {"frame": "snapshot", "subscription": 3, "version": 17,
     "relations": {"reach": [...]}, "resync": true}
    {"frame": "closed", "subscription": 3, "reason": "overflow"}

``delta`` frames are emitted in strictly increasing ``version`` order per
subscription; a ``snapshot`` frame with ``resync`` replaces the client's
materialized state wholesale (sent after queue overflow under the
``resync`` policy — deltas are never silently skipped).
"""

from __future__ import annotations

import json
import math

from repro.errors import (
    NotMaintainable,
    ProtocolError,
    QueryTimeout,
    ReadOnlyError,
    ReplicaStale,
    ResultTooLarge,
    ServiceError,
    SubscriptionError,
)

#: The operations a server understands.
OPS = (
    "graphlog",
    "datalog",
    "rpq",
    "update",
    "stats",
    "ping",
    "explain",
    "profile",
    "checkpoint",
    "slowlog",
    "repl_bootstrap",
    "repl_tail",
    "promote",
    "subscribe",
    "unsubscribe",
    "trace_get",
    "cluster_stats",
)

#: The push-frame kinds a server emits (see module docstring).
FRAMES = ("delta", "snapshot", "closed")

#: Maximum accepted request-line length (a protocol-level DoS guard).
MAX_REQUEST_BYTES = 4 * 1024 * 1024

_CODE_TO_EXCEPTION = {
    "protocol_error": ProtocolError,
    "timeout": QueryTimeout,
    "result_too_large": ResultTooLarge,
    "read_only": ReadOnlyError,
    "replica_stale": ReplicaStale,
    "not_maintainable": NotMaintainable,
    "subscription_error": SubscriptionError,
    "service_error": ServiceError,
}


def encode(message):
    """Serialize one protocol message to a newline-terminated bytes line."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode_request(line):
    """Parse one request line into a dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(message).__name__}")
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {', '.join(OPS)}")
    validate_budgets(message)
    trace = message.get("trace")
    if trace is not None:
        # Validate eagerly so a malformed context is the sender's
        # protocol_error, not a mid-request service_error.
        from repro.obs.context import TraceContext

        TraceContext.from_wire(trace)
    return message


def validate_budgets(message):
    """Type/range-check the per-request budget fields at decode time.

    A string or negative ``timeout`` used to reach ``asyncio.wait_for`` and
    surface as ``errors.internal``; budgets are protocol-level inputs, so a
    bad one is the *client's* error and must be a ``protocol_error``.
    Booleans are rejected explicitly (``True`` is an ``int`` in Python, and
    a request saying ``"max_rows": true`` is a bug, not a budget).
    """
    timeout = message.get("timeout")
    if timeout is not None:
        if (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
            or not math.isfinite(timeout)
            or timeout < 0
        ):
            raise ProtocolError(
                f"'timeout' must be a non-negative finite number, got {timeout!r}"
            )
    for field in (
        "max_rows",
        "max_bytes",
        "min_version",
        "from_version",
        "max_records",
        "wait_ms",
        "queue_max",
        "subscription",
    ):
        value = message.get(field)
        if value is not None:
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ProtocolError(
                    f"{field!r} must be a non-negative integer, got {value!r}"
                )


def ok_response(
    request_id, result, version=None, elapsed_ms=None, cache=None, trace_id=None
):
    response = {"id": request_id, "ok": True, "result": result}
    if version is not None:
        response["version"] = version
    if elapsed_ms is not None:
        response["elapsed_ms"] = round(elapsed_ms, 3)
    if cache is not None:
        response["cache"] = cache
    if trace_id is not None:
        response["trace_id"] = trace_id
    return response


def error_response(request_id, exc):
    """Build the failure response for an exception."""
    code = getattr(exc, "code", None) or "service_error"
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "code": code,
            "kind": type(exc).__name__,
            "message": str(exc),
        },
    }


def raise_for_error(response):
    """Re-raise the service-side error carried by a failure response.

    The client uses this to surface server errors as the same exception
    types the library raises locally: protocol violations, timeouts and
    size overruns map to their dedicated classes; evaluation errors
    (parse/safety/stratification/...) surface as :class:`ServiceError`
    with the original class name in the message.
    """
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    code = error.get("code", "service_error")
    message = error.get("message", "unknown server error")
    kind = error.get("kind")
    if kind and kind != code:
        message = f"{kind}: {message}"
    raise _CODE_TO_EXCEPTION.get(code, ServiceError)(message)


def rows_to_wire(rows):
    """Sort a set of answer tuples into JSON-friendly lists (deterministic)."""
    return [list(row) for row in sorted(rows, key=_row_key)]


def _row_key(row):
    return tuple((type(value).__name__, str(value)) for value in row)


# --------------------------------------------------------------- push frames


def is_push_frame(message):
    """True when *message* is a server-push frame (vs a response)."""
    return isinstance(message, dict) and "frame" in message


def delta_frame(subscription_id, version, inserted, deleted, trace_id=None):
    """One incremental update: net row changes at *version*.

    ``inserted``/``deleted`` are ``{predicate: [rows...]}`` with rows in
    :func:`rows_to_wire` order.  ``trace_id`` links the frame to the
    distributed trace of the commit that produced it.
    """
    frame = {
        "frame": "delta",
        "subscription": subscription_id,
        "version": version,
        "inserted": {pred: rows_to_wire(rows) for pred, rows in inserted.items()},
        "deleted": {pred: rows_to_wire(rows) for pred, rows in deleted.items()},
    }
    if trace_id is not None:
        frame["trace_id"] = trace_id
    return frame


def snapshot_frame(subscription_id, version, relations, resync=False):
    """A full result set at *version*; with ``resync`` it replaces any
    previously applied state (sent after overflow under the resync policy)."""
    frame = {
        "frame": "snapshot",
        "subscription": subscription_id,
        "version": version,
        "relations": {pred: rows_to_wire(rows) for pred, rows in relations.items()},
    }
    if resync:
        frame["resync"] = True
    return frame


def closed_frame(subscription_id, reason):
    """The server terminated the subscription (overflow/shutdown/resync
    failure); no further frames will arrive for this id."""
    return {"frame": "closed", "subscription": subscription_id, "reason": reason}
