"""Figure 12: displaying the answer of a GraphLog query (the prototype).

The screendump's leftmost query: define a loop labeled *RT-scale* from a
city back to itself if the city is a scale (stopover) on a sequence of
Canadian Pacific flights from Rome to Tokyo.  The result is displayed by
highlighting all instances on the database window — here, by computing the
scale cities with the RPQ engine (``CP+`` into the city and ``CP+`` onward
to Tokyo), materializing the RT-scale loop edges, and emitting DOT with the
qualifying flights highlighted.

The evaluation runs against the HAM-backed store, as the prototype did
through the Neptune front-end.
"""

from __future__ import annotations

from repro.datasets.airlines import figure12_graph
from repro.ham.store import HAMStore
from repro.rpq.evaluate import RPQEvaluator
from repro.visual.dot import graph_to_dot
from repro.visual.highlight import new_edges_graph


def rt_scale_cities(graph, origin="rome", destination="tokyo", airline="CP"):
    """Cities that are a scale on a sequence of *airline* flights from
    *origin* to *destination* (strictly between the endpoints)."""
    evaluator = RPQEvaluator(graph)
    from_origin = evaluator.targets(f"{airline}+", origin)
    to_destination = {
        source for source, target in evaluator.pairs(f"{airline}+") if target == destination
    }
    return (from_origin & to_destination) - {origin, destination}


def reproduce():
    store = HAMStore()
    store.load_graph(figure12_graph())
    graph = store.graph
    scales = rt_scale_cities(graph)
    evaluator = RPQEvaluator(graph)
    # Highlight every CP flight on a Rome -> Tokyo qualifying path.
    highlighted = {
        edge
        for edge in evaluator.matching_edges("CP+", sources=["rome"])
        if edge.label == "CP"
    }
    with_loops = new_edges_graph(graph, [(c, c) for c in sorted(scales)], "RT-scale")
    return {
        "store": store,
        "graph": graph,
        "scales": sorted(scales),
        "highlight_dot": graph_to_dot(graph, name="figure12", highlighted_edges=highlighted),
        "result_graph": with_loops,
    }


def render():
    artifacts = reproduce()
    return (
        "Figure 12: RT-scale query on the airline graph (HAM-backed)\n\n"
        f"scale cities on CP routes Rome -> Tokyo: {', '.join(artifacts['scales'])}\n\n"
        + artifacts["highlight_dot"]
    )


def main():
    print(render())


if __name__ == "__main__":
    main()
