"""Programmatic reproduction of every figure in the paper.

Each ``figNN`` module exposes ``reproduce()`` (structured artifacts) and
``render()`` (printable text); ``python -m repro.figures.figNN`` prints it.
"""

from repro.figures import (
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
)

ALL_FIGURES = {
    "fig01": fig01,
    "fig02": fig02,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}

__all__ = ["ALL_FIGURES"] + sorted(ALL_FIGURES)
