"""Figure 7: the translation procedure of Algorithm 3.1.

The figure is the algorithm itself; we reproduce it as an executable trace:
for an input program, report each strongly connected component, the rules it
contributes (r1', r2', the TC pair, r3'), and the signature constants used.
"""

from __future__ import annotations

from repro.datalog.parser import parse_program
from repro.figures.fig08 import PROGRAM_TEXT
from repro.translation.sl_to_stc import sl_to_stc


def trace(program):
    """Run Algorithm 3.1 and return a structured trace."""
    result = sl_to_stc(program)
    steps = []
    for index, component in enumerate(result.components):
        steps.append(
            {
                "component": sorted(component),
                "edge_predicate": result.edge_predicates[index],
                "closure_predicate": result.closure_predicates[index],
            }
        )
    return {
        "result": result,
        "steps": steps,
        "constants": {k: str(v) for k, v in result.constants.items()},
    }


def reproduce():
    program = parse_program(PROGRAM_TEXT)
    return trace(program)


def render():
    artifacts = reproduce()
    lines = ["Figure 7: Algorithm 3.1 trace on the same-generation program", ""]
    for step in artifacts["steps"]:
        lines.append(
            f"  recursive SCC {step['component']}: edge predicate "
            f"{step['edge_predicate']}, closure predicate {step['closure_predicate']}"
        )
    lines.append(f"  signature constants: {artifacts['constants']}")
    lines.append("")
    lines.append("output program:")
    lines.append(artifacts["result"].program.pretty())
    return "\n".join(lines)


def main():
    print(render())


if __name__ == "__main__":
    main()
