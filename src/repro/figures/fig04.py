"""Figure 4: feasible flight connections.

Two query graphs: ``feasible(F1, F2)`` holds when flight F1 arrives at the
city F2 departs from, before F2's departure; ``stop-connected(C1, C2)``
holds when a sequence of *at least two* feasible flights links the cities
(that is why the closure edge sits between the first and last flight:
``from``/``to`` contribute one flight each and ``feasible+`` at least one
hop).
"""

from __future__ import annotations

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datasets.flights import figure1_database
from repro.visual.ascii_art import render_graphical_query, render_relation
from repro.visual.dot import graphical_query_to_dot

QUERY_TEXT = """
define (F1) -[feasible]-> (F2) {
    (F1) -[to]-> (C);
    (C) <-[from]- (F2);
    (F1) -[arrival]-> (TA);
    (F2) -[departure]-> (TD);
    (TA) -[<]-> (TD);
}

define (C1) -[stop-connected]-> (C2) {
    (C1) <-[from]- (F1);
    (F1) -[feasible+]-> (F2);
    (F2) -[to]-> (C2);
}
"""


def query():
    return parse_graphical_query(QUERY_TEXT, name="figure4")


def reproduce(database=None):
    graphical = query()
    database = database or figure1_database()
    engine = GraphLogEngine()
    result = engine.run(graphical, database)
    return {
        "query": graphical,
        "database": database,
        "feasible": set(result.facts("feasible")),
        "stop_connected": set(result.facts("stop-connected")),
        "dot": graphical_query_to_dot(graphical, name="figure4"),
        "text": render_graphical_query(graphical, title="Figure 4"),
    }


def render():
    artifacts = reproduce()
    out = artifacts["text"] + "\n"
    out += render_relation(
        artifacts["feasible"], header=("F1", "F2"), title="feasible"
    )
    out += "\n" + render_relation(
        artifacts["stop_connected"], header=("C1", "C2"), title="stop-connected"
    )
    return out


def main():
    print(render())


if __name__ == "__main__":
    main()
