"""Figure 8: the "same generation" query, in linear Datalog."""

from __future__ import annotations

from repro.datalog.classify import classification
from repro.datalog.parser import parse_program

PROGRAM_TEXT = """
sg(X, X) :- person(X).
sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
"""


def program():
    return parse_program(PROGRAM_TEXT)


def reproduce():
    sg = program()
    return {
        "program": sg,
        "text": sg.pretty(),
        "classification": classification(sg),
    }


def render():
    artifacts = reproduce()
    flags = artifacts["classification"]
    return (
        "Figure 8: same generation, in linear Datalog\n\n"
        + artifacts["text"]
        + f"\nlinear: {flags['linear']}, stratified: {flags['stratified']}, "
        + f"TC-shaped: {flags['tc']}\n"
    )


def main():
    print(render())


if __name__ == "__main__":
    main()
