"""Figure 1: a graph representation of a flights schedule database."""

from __future__ import annotations

from repro.datasets.flights import figure1_database, figure1_graph
from repro.visual.ascii_art import render_database, render_graph
from repro.visual.dot import graph_to_dot


def reproduce():
    """Build the Figure 1 artifacts: the relational database, its graph
    encoding, and both renderings."""
    database = figure1_database()
    graph = figure1_graph()
    return {
        "database": database,
        "graph": graph,
        "dot": graph_to_dot(graph, name="figure1"),
        "text": render_graph(graph, title="Figure 1: flights schedule database"),
    }


def render():
    artifacts = reproduce()
    return artifacts["text"] + "\n" + render_database(artifacts["database"], "relations")


def main():
    print(render())


if __name__ == "__main__":
    main()
