"""Figure 9: the "same generation" query, in TC Datalog.

The paper prints::

    e(Z,W,sg,X,Y,sg) <- parent(X,Z), parent(Y,W).
    e(c,c,c,X,X,sg)  <- person(X).
    t(X1,X2,X3,Y1,Y2,Y3) <- e(X1,X2,X3,Y1,Y2,Y3).
    t(X1,X2,X3,Y1,Y2,Y3) <- t(X1,X2,X3,Z1,Z2,Z3), t(Z1,Z2,Z3,Y1,Y2,Y3).
    sg(X,Y) <- t(c,c,c,X,Y,sg).

(The paper's figure writes the second TC rule with two ``t`` subgoals; the
Definition 3.2 shape, which Algorithm 3.1 emits, uses ``e`` then ``t`` —
the two forms compute the same closure.)  Our Algorithm 3.1 output matches,
including the ``sg`` signature constant and the ``(c,c,c)`` start node.
"""

from __future__ import annotations

from repro.datalog.classify import is_stratified_tc_program
from repro.figures.fig08 import program as fig8_program
from repro.translation.differential import check_equivalence
from repro.translation.sl_to_stc import sl_to_stc
from repro.datasets.family import random_genealogy


def reproduce():
    sg = fig8_program()
    result = sl_to_stc(sg)  # predicate-name signatures, as in the figure
    database = random_genealogy(seed=9, generations=4, people_per_generation=5)
    equal, differences = check_equivalence(sg, database)
    return {
        "input": sg,
        "result": result,
        "program": result.program,
        "text": result.program.pretty(),
        "is_stc": is_stratified_tc_program(result.program),
        "equivalent_on_sample": equal,
        "differences": differences,
    }


def render():
    artifacts = reproduce()
    return (
        "Figure 9: same generation, in TC Datalog (Algorithm 3.1 output)\n\n"
        + artifacts["text"]
        + f"\noutput in STC-DATALOG: {artifacts['is_stc']}"
        + f"\nequivalent to Figure 8 on a random genealogy: "
        + f"{artifacts['equivalent_on_sample']}\n"
    )


def main():
    print(render())


if __name__ == "__main__":
    main()
