"""Figure 11: how a delay DS in task T would affect other tasks (Example 4.1).

Three stages, matching the figure's three query graphs:

1. *moved-duration*: "move" the duration of task T2 onto a new edge from any
   task T1 that affects T2 — plain GraphLog
   (``moved-duration(T1, T2, D) :- affects(T1, T2), duration(T2, D)``).
2. *earlier-start*: ``earlier-start(T1, T2, E)`` where E is the *longest sum
   of durations along all paths* from T1 to T2 — path summarization with the
   max-plus semiring (Section 4).
3. *delayed-start*: the new start of T1 when task T is delayed by DS days —
   a simple calculation: ``max(S1, S + D + DS + E)`` where S1 is T1's
   scheduled start, S and D are T's scheduled start and duration, and E is
   the earlier-start value from T to T1 (0 when T directly affects T1 with
   no intervening tasks, i.e. for ``T affects T1`` we take the path sum over
   moved durations *excluding* T1's own).

Stage 2's E sums the moved durations along a path T -> ... -> T1, i.e. the
durations of every task strictly after T up to and including T1; the finish
delay of T propagates through the chain, so T1 cannot *finish* before
``S + D + DS + E``; we report the induced start as that minus T1's duration.
"""

from __future__ import annotations

from repro.aggregation.summarize import summarize_paths
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.datasets.tasks import figure11_database
from repro.visual.ascii_art import render_relation

MOVED_DURATION_PROGRAM = """
moved-duration(T1, T2, D) :- affects(T1, T2), duration(T2, D).
"""

#: Stages 1-2 as a real GraphLog query: the first query graph "moves" each
#: task's duration onto the affects edge; the second is a path-summarization
#: edge (Section 4) computing the longest duration-sum over all paths.
QUERY_TEXT = """
define (T1) -[moved-duration(D)]-> (T2) {
    (T1) -[affects]-> (T2);
    (T2) -[duration]-> (D);
}

define (T1) -[earlier-start(E)]-> (T2) {
    (T1) -[moved-duration @ longest E]-> (T2);
}
"""


def query():
    from repro.core.dsl import parse_graphical_query

    return parse_graphical_query(QUERY_TEXT, name="figure11")


def earlier_start(database):
    """Stage 2: ``{(T1, T2): longest duration-sum over paths}``.

    Evaluated through the GraphLog engine (summarization edge); the plain
    summarize_paths computation is kept as the test oracle.
    """
    from repro.core.engine import GraphLogEngine

    result = GraphLogEngine().run(query(), database)
    return {(t1, t2): e for (t1, t2, e) in result.facts("earlier-start")}


def earlier_start_oracle(database):
    """Independent computation used by tests: no GraphLog involved."""
    moved = evaluate(parse_program(MOVED_DURATION_PROGRAM), database)
    triples = [(t1, t2, d) for (t1, t2, d) in moved.facts("moved-duration")]
    return summarize_paths(triples, "longest")


def delayed_start(database, task, delay):
    """Stage 3: ``{affected_task: new_start}`` for a *delay* in *task*.

    Only tasks whose induced start exceeds their scheduled start appear.
    """
    starts = {t: s for (t, s) in database.facts("scheduled-start")}
    durations = {t: d for (t, d) in database.facts("duration")}
    earlier = earlier_start(database)
    source_finish = starts[task] + durations[task] + delay
    out = {}
    for (t_from, t_to), path_sum in earlier.items():
        if t_from != task:
            continue
        induced_start = source_finish + path_sum - durations[t_to]
        if induced_start > starts[t_to]:
            out[t_to] = induced_start
    return out


def reproduce(task="design", delay=7):
    database = figure11_database()
    earlier = earlier_start(database)
    delayed = delayed_start(database, task, delay)
    return {
        "database": database,
        "earlier_start": earlier,
        "delayed": delayed,
        "task": task,
        "delay": delay,
    }


def render():
    artifacts = reproduce()
    earlier_rows = [
        (a, b, value) for (a, b), value in artifacts["earlier_start"].items()
    ]
    out = "Figure 11: delay propagation (Example 4.1)\n\n"
    out += render_relation(
        earlier_rows,
        header=("T1", "T2", "E"),
        title="earlier-start (longest duration-sum over all paths)",
    )
    delayed_rows = sorted(artifacts["delayed"].items())
    out += "\n" + render_relation(
        delayed_rows,
        header=("task", "new start"),
        title=(
            f"delayed-start when '{artifacts['task']}' slips by "
            f"{artifacts['delay']} days"
        ),
    )
    return out


def main():
    print(render())


if __name__ == "__main__":
    main()
