"""Figure 6: circularly used modules invoking code from the async-io library
(Example 2.6).

``self-used(M)`` holds when module M calls itself indirectly through other
modules *and* M uses (directly or indirectly) the async-io library.  The
distinguished edge is the loop on M, so the defined relation is the diagonal
``self-used(M, M)``; read it as the unary predicate of the paper by
projecting either column.
"""

from __future__ import annotations

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datasets.software import figure6_database
from repro.visual.ascii_art import render_graphical_query
from repro.visual.dot import graphical_query_to_dot

QUERY_TEXT = """
define (M) -[self-used]-> (M) {
    (F1) -[in-module]-> (M);
    (F1) -[calls-extn (calls-local | calls-extn)*]-> (F2);
    (F2) -[in-module]-> (M);
    (G1) -[in-module]-> (M);
    (G1) -[(calls-local | calls-extn)*]-> (GL);
    (GL) -[in-library]-> (async-io);
}
"""


def query():
    return parse_graphical_query(QUERY_TEXT, name="figure6")


def reproduce(database=None):
    graphical = query()
    database = database or figure6_database()
    pairs = GraphLogEngine().answers(graphical, database, "self-used")
    modules = sorted({m for m, _m in pairs})
    return {
        "query": graphical,
        "database": database,
        "answers": pairs,
        "modules": modules,
        "dot": graphical_query_to_dot(graphical, name="figure6"),
        "text": render_graphical_query(graphical, title="Figure 6"),
    }


def render():
    artifacts = reproduce()
    return (
        artifacts["text"]
        + "\nself-used modules: "
        + ", ".join(artifacts["modules"])
        + "\n"
    )


def main():
    print(render())


if __name__ == "__main__":
    main()
