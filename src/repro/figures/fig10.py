"""Figure 10: relative expressive power of the query languages considered.

The figure is a containment diagram; we reproduce it as a set of *executable
evidence checks*:

- ``thm33_equal``: the four languages of Theorem 3.3 (GraphLog, SL-DATALOG,
  STC-DATALOG, TC) give identical answers on a concrete query/database —
  the equality inside the big non-monotone ellipse.
- ``fo_strict``: FO is strictly weaker than TC on reachability — any fixed
  k-step first-order unfolding misses pairs on a chain longer than k, while
  the TC formula finds them.
- ``monotone_side``: the monotone chain TC-DATALOG ⊆ MGRAPHLOG ⊆ L-DATALOG
  (Corollary 3.1/3.3): a negation-free GraphLog query translates to a
  negation-free linear program.
- ``datalog_beyond_linear``: DATALOG contains non-linear programs (which the
  linearity test rejects), the structural gap between L-DATALOG and DATALOG.
- ``nlogspace_bound``: TC evaluation by frontier-only reachability succeeds
  without materializing the closure (Lemma 3.5's membership direction).

(Separations that rest on complexity-theoretic conjectures — e.g. evenness
being outside TC [CH82] — are cited, not demonstrated.)
"""

from __future__ import annotations

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine, prepare_database
from repro.core.translate import translate
from repro.datalog.classify import is_linear, is_stratified_tc_program
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.datasets.family import figure2_family
from repro.datasets.random_graphs import chain_database
from repro.fo_tc.evaluate import Structure, answers as fo_answers
from repro.fo_tc.formulas import And, Exists, PredAtom, TCApp
from repro.fo_tc.from_stc import stc_to_tc
from repro.fo_tc.reachability import peak_frontier_size
from repro.translation.differential import check_equivalence
from repro.translation.sl_to_stc import sl_to_stc
from repro.datalog.terms import Variable

DIAGRAM = """
            non-monotone                      monotone
      ┌──────────────────────┐        ┌──────────────────────┐
      │       FP             │        │      DATALOG         │
      │  ┌───────────────┐   │        │  ┌───────────────┐   │
      │  │ TC = GRAPHLOG │   │        │  │  TC-DATALOG = │   │
      │  │ = SL-DATALOG  │   │        │  │  MGRAPHLOG =  │   │
      │  │ = STC-DATALOG │   │        │  │  L-DATALOG    │   │
      │  │ (= QNLOGSPACE │   │        │  └───────────────┘   │
      │  │  with order)  │   │        └──────────────────────┘
      │  └───────────────┘   │
      │        FO            │
      └──────────────────────┘
"""


def _fo_reach_k(k):
    """The k-step FO reachability formula reach_k(X, Y) over edge/2."""
    x, y = Variable("X"), Variable("Y")
    disjuncts = []
    from repro.fo_tc.formulas import Or

    for steps in range(1, k + 1):
        hops = [x] + [Variable(f"M{i}") for i in range(steps - 1)] + [y]
        atoms = [PredAtom("edge", (hops[i], hops[i + 1])) for i in range(steps)]
        matrix = atoms[0] if len(atoms) == 1 else And(*atoms)
        middles = hops[1:-1]
        disjuncts.append(Exists(middles, matrix) if middles else matrix)
    return disjuncts[0] if len(disjuncts) == 1 else Or(*disjuncts)


def check_thm33_equal():
    """GraphLog = SL = STC = TC on the Figure 2 query and family."""
    source = """
    define (P1) -[not-desc-of(P2)]-> (P3) {
        (P1) -[descendant+]-> (P3);
        (P2) -[~descendant+]-> (P3);
        person(P2);
    }
    """
    query = parse_graphical_query(source)
    database = figure2_family()
    graphlog_answers = GraphLogEngine().answers(query, database, "not-desc-of")
    sl_program = translate(query)
    prepared = prepare_database(database)
    sl_answers = set(evaluate(sl_program, prepared).facts("not-desc-of"))
    stc = sl_to_stc(sl_program, use_predicate_name_signatures=False)
    equal_stc, _diffs = check_equivalence(sl_program, prepared, translation=stc)
    queries = stc_to_tc(sl_program)
    tc_query = queries["not-desc-of"]
    structure = Structure.from_database(prepared)
    tc_answers = fo_answers(tc_query.formula, structure, tc_query.parameters)
    return graphlog_answers == sl_answers == tc_answers and equal_stc


def check_fo_strict(k=4):
    """reach_k misses pairs on a chain of length k+1; TC finds them."""
    database = chain_database(k + 1)
    structure = Structure.from_database(database)
    fo_formula = _fo_reach_k(k)
    x, y = Variable("X"), Variable("Y")
    fo_result = fo_answers(fo_formula, structure, (x, y))
    tc_formula = TCApp(
        (Variable("U"),), (Variable("V"),),
        PredAtom("edge", (Variable("U"), Variable("V"))),
        (x,), (y,),
    )
    tc_result = fo_answers(tc_formula, structure, (x, y))
    endpoints = ("n0", f"n{k + 1}")
    return endpoints in tc_result and endpoints not in fo_result and fo_result < tc_result


def check_monotone_side():
    """A negation-free GraphLog query yields a negation-free linear program."""
    source = """
    define (X) -[reach]-> (Y) {
        (X) -[edge+]-> (Y);
    }
    """
    query = parse_graphical_query(source)
    program = translate(query)
    has_negation = any(
        literal.negative for rule in program for literal in rule.negative_literals()
    )
    return (not has_negation) and is_linear(program) and is_stratified_tc_program(program)


def check_datalog_beyond_linear():
    """The doubling TC program is in DATALOG but not linear."""
    program = parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), path(Z, Y).
        """
    )
    return not is_linear(program)


def check_nlogspace_bound(n=30):
    """TC by frontier search: reaches all of a chain, frontier stays tiny."""
    database = chain_database(n)
    edges = set(database.facts("edge"))

    def edge(u, v):
        return (u[0], v[0]) in edges

    domain = sorted({x for pair in edges for x in pair})
    reached, peak = peak_frontier_size(domain, 1, ("n0",), edge)
    return reached == n and peak <= 2


def reproduce():
    checks = {
        "thm33_equal": check_thm33_equal(),
        "fo_strict": check_fo_strict(),
        "monotone_side": check_monotone_side(),
        "datalog_beyond_linear": check_datalog_beyond_linear(),
        "nlogspace_bound": check_nlogspace_bound(),
    }
    return {"checks": checks, "diagram": DIAGRAM, "all_pass": all(checks.values())}


def render():
    artifacts = reproduce()
    lines = ["Figure 10: relative expressive power — evidence checks", ""]
    for name, passed in artifacts["checks"].items():
        lines.append(f"  [{'ok' if passed else 'FAIL'}] {name}")
    lines.append(artifacts["diagram"])
    return "\n".join(lines)


def main():
    print(render())


if __name__ == "__main__":
    main()
