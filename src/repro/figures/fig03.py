"""Figure 3: the Figure 2 query translated to Datalog by λ.

The paper prints::

    not-desc-of(P1,P3,P2) <- descendant-tc(P1,P3), ¬descendant-tc(P2,P3),
                             person(P2).
    descendant-tc(X,Y)    <- descendant(X,Y).
    descendant-tc(X,Y)    <- descendant(X,Z), descendant-tc(Z,Y).

Our translation reproduces the same program (auxiliary-variable names are
generated, predicate names match exactly).
"""

from __future__ import annotations

from repro.core.translate import translate
from repro.figures.fig02 import query


def reproduce():
    graphical = query()
    program = translate(graphical)
    return {
        "program": program,
        "text": program.pretty(),
        "predicates": sorted(program.idb_predicates),
    }


def render():
    return "Figure 3: λ(figure 2) =\n\n" + reproduce()["text"]


def main():
    print(render())


if __name__ == "__main__":
    main()
