"""Figure 5: finding the local family friends (Example 2.5).

One query graph with two nodes, made possible by path regular expressions:
friends of me or of my ancestors, living in Toronto.  The ancestor path is
``(father | mother(_))*`` — the underscore projects out the hospital
attribute of ``mother`` so it is not a ghost variable; without p.r.e.s this
would need three query graphs (one of them with four nodes).
"""

from __future__ import annotations

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datasets.family import example25_family
from repro.visual.ascii_art import render_graphical_query, render_relation
from repro.visual.dot import graphical_query_to_dot

QUERY_TEXT = """
define (P1) -[local-family-friend]-> (P2) {
    (P1) <-[(father | mother(_))*]- (A);
    (A) -[friend]-> (P2);
    (P2) -[residence]-> (toronto);
}
"""


def query():
    return parse_graphical_query(QUERY_TEXT, name="figure5")


def reproduce(database=None):
    graphical = query()
    database = database or example25_family()
    answers = GraphLogEngine().answers(graphical, database, "local-family-friend")
    return {
        "query": graphical,
        "database": database,
        "answers": answers,
        "dot": graphical_query_to_dot(graphical, name="figure5"),
        "text": render_graphical_query(graphical, title="Figure 5"),
    }


def render():
    artifacts = reproduce()
    mine = sorted(t for t in artifacts["answers"] if t[0] == "me")
    return (
        artifacts["text"]
        + "\n"
        + render_relation(
            artifacts["answers"], header=("P1", "P2"), title="local-family-friend"
        )
        + "\nfriends of 'me' and of my ancestors in Toronto: "
        + ", ".join(t[1] for t in mine)
        + "\n"
    )


def main():
    print(render())


if __name__ == "__main__":
    main()
