"""Figure 2: the descendants of P1 which are not descendants of P2."""

from __future__ import annotations

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datasets.family import figure2_family
from repro.visual.ascii_art import render_graphical_query, render_relation
from repro.visual.dot import graphical_query_to_dot

QUERY_TEXT = """
define (P1) -[not-desc-of(P2)]-> (P3) {
    (P1) -[descendant+]-> (P3);
    (P2) -[~descendant+]-> (P3);
    person(P2);
}
"""


def query():
    """The Figure 2 query graph as a GraphicalQuery."""
    return parse_graphical_query(QUERY_TEXT, name="figure2")


def reproduce():
    graphical = query()
    database = figure2_family()
    answers = GraphLogEngine().answers(graphical, database, "not-desc-of")
    return {
        "query": graphical,
        "database": database,
        "answers": answers,
        "dot": graphical_query_to_dot(graphical, name="figure2"),
        "text": render_graphical_query(graphical, title="Figure 2"),
    }


def render():
    artifacts = reproduce()
    return artifacts["text"] + "\n" + render_relation(
        artifacts["answers"],
        header=("P1", "P3", "P2"),
        title="not-desc-of on the sample family",
    )


def main():
    print(render())


if __name__ == "__main__":
    main()
