"""Setup shim enabling legacy editable installs where the `wheel` package is
unavailable (offline environments): ``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'GraphLog: a Visual Formalism for Real Life Recursion' "
        "(Consens & Mendelzon, PODS 1990)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
