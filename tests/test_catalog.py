"""Tests for the query catalog: each pattern's semantics verified
independently with plain graph computations."""

import pytest

from repro.core.catalog import (
    CATALOG,
    ancestors,
    bottlenecks,
    connected,
    in_cycle,
    reachability,
    reachable_from,
    same_generation,
    siblings,
    sources_and_sinks,
    table_of_contents,
)
from repro.core.engine import GraphLogEngine
from repro.datalog.database import Database
from repro.graphs.closure import transitive_closure


@pytest.fixture
def engine():
    return GraphLogEngine()


def graph_db(pairs, predicate="edge"):
    db = Database()
    db.add_facts(predicate, pairs)
    return db


class TestReachability:
    def test_matches_closure(self, engine):
        pairs = [("a", "b"), ("b", "c"), ("x", "y")]
        answers = engine.answers(reachability(), graph_db(pairs), "reachable")
        assert answers == transitive_closure(set(pairs))

    def test_reachable_from_constant(self, engine):
        pairs = [("a", "b"), ("b", "c"), ("x", "y")]
        answers = engine.answers(reachable_from("a"), graph_db(pairs), "reached")
        assert answers == {("a", "b"), ("a", "c")}

    def test_custom_edge_predicate(self, engine):
        db = graph_db([("a", "b")], predicate="link")
        answers = engine.answers(reachability(edge="link"), db, "reachable")
        assert answers == {("a", "b")}


class TestConnected:
    def test_direction_ignored(self, engine):
        pairs = [("a", "b"), ("c", "b")]
        answers = engine.answers(connected(), graph_db(pairs), "connected")
        assert ("a", "c") in answers  # a -> b <- c
        assert ("c", "a") in answers

    def test_components_separate(self, engine):
        pairs = [("a", "b"), ("x", "y")]
        answers = engine.answers(connected(), graph_db(pairs), "connected")
        assert ("a", "x") not in answers


class TestCycles:
    def test_cycle_members(self, engine):
        pairs = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
        answers = engine.answers(in_cycle(), graph_db(pairs), "in-cycle")
        assert {x for x, _ in answers} == {"a", "b", "c"}

    def test_acyclic_empty(self, engine):
        answers = engine.answers(in_cycle(), graph_db([("a", "b")]), "in-cycle")
        assert answers == set()


class TestSourcesSinks:
    def test_chain(self, engine):
        result = engine.run(sources_and_sinks(), graph_db([("a", "b"), ("b", "c")]))
        assert {x for x, _ in result.facts("source")} == {"a"}
        assert {x for x, _ in result.facts("sink")} == {"c"}

    def test_cycle_has_neither(self, engine):
        result = engine.run(sources_and_sinks(), graph_db([("a", "b"), ("b", "a")]))
        assert not result.facts("source")
        assert not result.facts("sink")


class TestGenealogy:
    FAMILY = [("g", "p1"), ("g", "p2"), ("p1", "c1"), ("p1", "c2"), ("p2", "c3")]

    def test_ancestors(self, engine):
        db = graph_db(self.FAMILY, predicate="parent")
        answers = engine.answers(ancestors(), db, "ancestor")
        assert ("g", "c1") in answers
        assert ("p1", "c3") not in answers

    def test_siblings(self, engine):
        db = graph_db(self.FAMILY, predicate="parent")
        answers = engine.answers(siblings(), db, "sibling")
        assert ("c1", "c2") in answers and ("c2", "c1") in answers
        assert ("c1", "c3") not in answers  # cousins, not siblings
        assert all(x != y for x, y in answers)

    def test_same_generation(self, engine):
        db = graph_db(self.FAMILY, predicate="parent")
        answers = engine.answers(same_generation(), db, "same-generation")
        assert ("c1", "c3") in answers  # cousins: equal depth below g
        assert ("p1", "p2") in answers
        assert ("p1", "c1") not in answers

    def test_same_generation_includes_self_with_parent(self, engine):
        db = graph_db(self.FAMILY, predicate="parent")
        answers = engine.answers(same_generation(), db, "same-generation")
        assert ("c1", "c1") in answers


class TestBottlenecks:
    def test_single_path_bottleneck(self, engine):
        # a -> t -> b and no other route: t is the bottleneck for (a, b).
        db = graph_db([("a", "t"), ("t", "b")])
        db.add_facts("node", [("a",), ("t",), ("b",)])
        answers = engine.answers(bottlenecks(), db, "bottleneck")
        assert ("a", "b", "t") in answers

    def test_bypass_removes_bottleneck(self, engine):
        db = graph_db([("a", "t"), ("t", "b"), ("a", "b")])
        db.add_facts("node", [("a",), ("t",), ("b",)])
        answers = engine.answers(bottlenecks(), db, "bottleneck")
        assert ("a", "b", "t") not in answers


class TestTableOfContents:
    def test_reading_order(self, engine):
        db = Database()
        db.add_facts("contains", [("doc", "s0"), ("doc", "s1"), ("doc", "s2")])
        db.add_facts("next", [("s0", "s1"), ("s1", "s2")])
        answers = engine.answers(table_of_contents(), db, "toc")
        assert ("doc", "s0", "s2") in answers
        assert ("doc", "s0", "s0") in answers  # star includes zero steps


class TestCatalogIndex:
    def test_every_entry_validates(self):
        for name, builder in CATALOG.items():
            query = builder()
            assert query.idb_predicates, name
