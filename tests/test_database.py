"""Tests for relations and databases."""

import pytest

from repro.datalog.database import Database, Relation
from repro.datalog.terms import Constant
from repro.errors import ArityError


class TestRelation:
    def test_add_and_contains(self):
        r = Relation("p", 2)
        assert r.add(("a", "b"))
        assert not r.add(("a", "b"))  # duplicate
        assert ("a", "b") in r
        assert len(r) == 1

    def test_arity_enforced(self):
        r = Relation("p", 2)
        with pytest.raises(ArityError):
            r.add(("a",))

    def test_lookup_builds_index(self):
        r = Relation("p", 2)
        r.add_many([("a", "b"), ("a", "c"), ("x", "y")])
        assert r.lookup((0,), ("a",)) == {("a", "b"), ("a", "c")}
        assert r.lookup((1,), ("y",)) == {("x", "y")}
        # Fully bound probes are membership tests: no index, iterable result.
        assert set(r.lookup((0, 1), ("a", "b"))) == {("a", "b")}
        assert not r.lookup((0, 1), ("a", "z"))

    def test_ensure_index_prebuilds(self):
        r = Relation("p", 2)
        r.add_many([("a", "b"), ("a", "c")])
        r.ensure_index((1,))
        assert (1,) in r._indexes
        r.add(("a", "d"))  # maintained like any lazily-built index
        assert r.lookup((1,), ("d",)) == {("a", "d")}
        r.ensure_index(())  # no-ops: empty, full-arity, already built
        r.ensure_index((0, 1))
        assert (0, 1) not in r._indexes

    def test_lookup_empty_positions_returns_all(self):
        r = Relation("p", 1)
        r.add(("a",))
        assert r.lookup((), ()) == {("a",)}

    def test_index_maintained_after_add(self):
        r = Relation("p", 2)
        r.add(("a", "b"))
        assert r.lookup((0,), ("a",)) == {("a", "b")}
        r.add(("a", "c"))  # added after index creation
        assert r.lookup((0,), ("a",)) == {("a", "b"), ("a", "c")}

    def test_index_maintained_after_discard(self):
        r = Relation("p", 2)
        r.add_many([("a", "b"), ("a", "c")])
        _ = r.lookup((0,), ("a",))
        r.discard(("a", "b"))
        assert r.lookup((0,), ("a",)) == {("a", "c")}

    def test_lookup_missing_value(self):
        r = Relation("p", 2)
        r.add(("a", "b"))
        assert r.lookup((0,), ("zzz",)) == frozenset()

    def test_copy_is_independent(self):
        r = Relation("p", 1)
        r.add(("a",))
        c = r.copy()
        c.add(("b",))
        assert len(r) == 1
        assert len(c) == 2

    def test_fully_bound_lookup_with_unsorted_positions(self):
        # Regression: the fully-bound fast path used to assemble the probe
        # row in *positions* order, so an unsorted position tuple silently
        # probed a permuted row and returned empty.
        r = Relation("p", 2)
        r.add(("a", "b"))
        assert set(r.lookup((1, 0), ("b", "a"))) == {("a", "b")}
        assert not r.lookup((1, 0), ("a", "b"))
        assert set(r.lookup((0, 1), ("a", "b"))) == {("a", "b")}
        r3 = Relation("q", 3)
        r3.add((1, 2, 3))
        assert set(r3.lookup((2, 0, 1), (3, 1, 2))) == {(1, 2, 3)}

    def test_relation_is_hashable(self):
        # Regression: defining __eq__ under __slots__ set __hash__ = None,
        # making relations unusable as dict keys / set members.
        r = Relation("p", 1)
        s = Relation("p", 1)
        assert len({r, s}) == 2  # identity hashing
        assert {r: "x"}[r] == "x"

    def test_relation_eq_foreign_type_not_implemented(self):
        r = Relation("p", 1)
        assert r.__eq__(42) is NotImplemented
        assert r != 42
        s = Relation("p", 1)
        assert r == s
        s.add(("a",))
        assert r != s

    def test_mutation_counter_tracks_changes(self):
        r = Relation("p", 1)
        stamp = r._mutations
        r.add(("a",))
        assert r._mutations == stamp + 1
        r.add(("a",))  # duplicate: no mutation
        assert r._mutations == stamp + 1
        r.discard(("a",))
        assert r._mutations == stamp + 2
        r.discard(("a",))  # absent: no mutation
        assert r._mutations == stamp + 2


class TestDatabase:
    def test_add_facts_counts_new(self):
        db = Database()
        assert db.add_facts("p", [("a",), ("b",), ("a",)]) == 2
        assert db.count("p") == 2

    def test_constant_unwrapped(self):
        db = Database()
        db.add_fact("p", Constant("a"), 3)
        assert ("a", 3) in db.facts("p")

    def test_missing_relation_is_empty(self):
        db = Database()
        assert db.facts("nope") == frozenset()

    def test_relation_arity_conflict(self):
        db = Database()
        db.add_fact("p", "a")
        with pytest.raises(ArityError):
            db.relation("p", 2)

    def test_copy_independent(self):
        db = Database()
        db.add_fact("p", "a")
        clone = db.copy()
        clone.add_fact("p", "b")
        assert db.count("p") == 1
        assert clone.count("p") == 2

    def test_merge(self):
        a = Database.from_facts({"p": [("x",)]})
        b = Database.from_facts({"p": [("y",)], "q": [("z", "w")]})
        a.merge(b)
        assert a.count() == 3

    def test_active_domain(self):
        db = Database.from_facts({"p": [("a", 1)], "q": [("b",)]})
        assert db.active_domain() == {"a", 1, "b"}

    def test_database_eq_foreign_type_not_implemented(self):
        db = Database()
        assert db.__eq__("not a database") is NotImplemented
        assert db != "not a database"

    def test_equality_ignores_empty_relations(self):
        a = Database.from_facts({"p": [("x",)]})
        b = Database.from_facts({"p": [("x",)]})
        b.relation("empty", 1)
        assert a == b

    def test_to_dict_sorted(self):
        db = Database.from_facts({"p": [("b",), ("a",)]})
        assert db.to_dict() == {"p": [("a",), ("b",)]}

    def test_count_total(self):
        db = Database.from_facts({"p": [("a",)], "q": [("b", "c")]})
        assert db.count() == 2

    def test_mixed_type_domain_sortable_via_to_dict(self):
        db = Database.from_facts({"p": [(1,), ("a",)]})
        assert len(db.to_dict()["p"]) == 2
