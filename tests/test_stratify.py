"""Tests for dependence graphs and stratification."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.stratify import (
    DependenceGraph,
    is_stratified,
    recursive_components,
    stratify,
    stratum_order,
)
from repro.errors import StratificationError


def program(text):
    return parse_program(text)


class TestDependenceGraph:
    def test_edges(self):
        p = program("h(X) :- p(X), not q(X).")
        g = DependenceGraph.of_program(p)
        assert g.dependencies("h") == {"p", "q"}
        assert g.negative_dependencies("h") == {"q"}

    def test_successors(self):
        p = program("h(X) :- p(X). g(X) :- h(X).")
        g = DependenceGraph.of_program(p)
        assert g.successors("h") == {"g"}

    def test_scc_of_mutual_recursion(self):
        p = program(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """
        )
        g = DependenceGraph.of_program(p)
        assert g.scc_of("even") == frozenset({"even", "odd"})

    def test_acyclic_check(self):
        p = program("h(X) :- p(X). g(X) :- h(X).")
        assert DependenceGraph.of_program(p).is_acyclic()
        p2 = program("h(X) :- h(X).")
        assert not DependenceGraph.of_program(p2).is_acyclic()
        assert DependenceGraph.of_program(p2).is_acyclic(ignore_self_loops=True)

    def test_negative_extra_forces_negative_edge(self):
        p = program("h(X) :- p(X).")
        g = DependenceGraph.of_program(p, negative_extra={"h": {"p"}})
        assert g.negative_dependencies("h") == {"p"}


class TestStratify:
    def test_edb_at_zero(self):
        strata = stratify(program("h(X) :- p(X)."))
        assert strata["p"] == 0
        assert strata["h"] == 0

    def test_negation_bumps(self):
        strata = stratify(program("h(X) :- p(X), not q(X). q(X) :- r(X)."))
        assert strata["h"] == strata["q"] + 1

    def test_chain_of_negations(self):
        strata = stratify(
            program(
                """
                a(X) :- e(X).
                b(X) :- e(X), not a(X).
                c(X) :- e(X), not b(X).
                """
            )
        )
        assert strata["a"] < strata["b"] < strata["c"]
        assert strata["c"] == 2

    def test_deep_chain_via_positive_then_negative(self):
        # Regression: strata must be computed dependencies-first.
        strata = stratify(
            program(
                """
                a(X) :- e(X), not z(X).
                z(X) :- e(X).
                b(X) :- a(X).
                c(X) :- b(X), not a(X).
                """
            )
        )
        assert strata["a"] == 1
        assert strata["b"] == 1
        assert strata["c"] == 2

    def test_recursion_through_negation_rejected(self):
        with pytest.raises(StratificationError):
            stratify(program("p(X) :- e(X), not p(X)."))

    def test_mutual_recursion_through_negation_rejected(self):
        with pytest.raises(StratificationError):
            stratify(
                program(
                    """
                    p(X) :- e(X), not q(X).
                    q(X) :- e(X), p(X).
                    """
                )
            )

    def test_positive_recursion_allowed(self):
        assert is_stratified(program("p(X, Y) :- e(X, Y). p(X, Y) :- e(X, Z), p(Z, Y)."))

    def test_stratum_order_groups(self):
        order = stratum_order(
            program(
                """
                a(X) :- e(X).
                b(X) :- e(X), not a(X).
                """
            )
        )
        assert order == [{"a"}, {"b"}]


class TestRecursiveComponents:
    def test_self_loop(self):
        comps = recursive_components(program("p(X) :- e(X). p(X) :- p(X)."))
        assert comps == [frozenset({"p"})]

    def test_non_recursive_excluded(self):
        comps = recursive_components(program("p(X) :- e(X)."))
        assert comps == []

    def test_mutual(self):
        comps = recursive_components(
            program(
                """
                even(X) :- zero(X).
                even(Y) :- succ(X, Y), odd(X).
                odd(Y) :- succ(X, Y), even(X).
                """
            )
        )
        assert frozenset({"even", "odd"}) in comps
