"""Tests for the HAM-style transactional, versioned graph store."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.datasets.airlines import figure12_graph
from repro.errors import StoreError, TransactionError
from repro.graphs.bridge import EdgeLabel
from repro.ham.store import HAMStore


@pytest.fixture
def store():
    return HAMStore()


class TestTransactions:
    def test_commit_applies(self, store):
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        assert store.graph.has_edge("a", "b", "x")
        assert store.version == 1

    def test_abort_discards(self, store):
        session = store.session()
        txn = session.transaction()
        txn.add_edge("a", "b", "x")
        txn.abort()
        assert store.graph.edge_count() == 0
        assert store.version == 0

    def test_exception_aborts(self, store):
        session = store.session()
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.add_edge("a", "b", "x")
                raise RuntimeError("boom")
        assert store.version == 0
        assert store.graph.edge_count() == 0

    def test_uncommitted_invisible(self, store):
        session = store.session()
        txn = session.transaction()
        txn.add_edge("a", "b", "x")
        assert store.graph.edge_count() == 0  # not yet committed
        assert txn.workspace.edge_count() == 1  # visible to the transaction
        txn.commit()
        assert store.graph.edge_count() == 1

    def test_double_commit_rejected(self, store):
        session = store.session()
        txn = session.transaction()
        txn.add_edge("a", "b", "x")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_edit_after_commit_rejected(self, store):
        session = store.session()
        txn = session.transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.add_node("z")

    def test_one_active_transaction_per_session(self, store):
        session = store.session()
        session.transaction()
        with pytest.raises(TransactionError):
            session.transaction()

    def test_remove_missing_edge_fails_eagerly(self, store):
        session = store.session()
        txn = session.transaction()
        with pytest.raises(StoreError):
            txn.remove_edge("a", "b", "x")

    def test_snapshot_isolation(self, store):
        session1 = store.session()
        session2 = store.session()
        txn1 = session1.transaction()
        txn1.add_edge("a", "b", "x")
        txn2 = session2.transaction()
        # txn2 began before txn1 committed: its workspace is empty.
        txn1.commit()
        assert txn2.workspace.edge_count() == 0
        txn2.add_edge("c", "d", "y")
        txn2.commit()
        # Both commits are applied to the store.
        assert store.graph.edge_count() == 2

    def test_conflicting_commit_rejected(self, store):
        seed = store.session()
        with seed.transaction() as txn:
            txn.add_edge("a", "b", "x")
        s1, s2 = store.session(), store.session()
        t1 = s1.transaction()
        t1.remove_edge("a", "b", "x")
        t2 = s2.transaction()
        t2.remove_edge("a", "b", "x")
        t1.commit()
        with pytest.raises(TransactionError):
            t2.commit()


class TestVersioning:
    def test_history(self, store):
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        with session.transaction() as txn:
            txn.add_edge("b", "c", "y")
        history = store.history()
        assert [r.txn_id for r in history] == [1, 2]

    def test_graph_at(self, store):
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        with session.transaction() as txn:
            txn.remove_edge("a", "b", "x")
        assert store.graph.edge_count() == 0
        assert store.graph_at(1).has_edge("a", "b", "x")
        assert store.graph_at(0).node_count() == 0

    def test_graph_at_bad_version(self, store):
        with pytest.raises(StoreError):
            store.graph_at(99)

    def test_version_strictly_increases_across_commits(self, store):
        session = store.session()
        seen = [store.version]
        for i in range(5):
            with session.transaction() as txn:
                txn.add_edge(f"n{i}", f"n{i + 1}", "x")
            seen.append(store.version)
        assert seen == [0, 1, 2, 3, 4, 5]
        assert all(b > a for a, b in zip(seen, seen[1:]))
        assert [r.version for r in store.history()] == [1, 2, 3, 4, 5]

    def test_version_unchanged_by_aborted_transactions(self, store):
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        assert store.version == 1
        txn = session.transaction()
        txn.add_edge("b", "c", "y")
        txn.abort()
        assert store.version == 1
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.add_edge("c", "d", "z")
                raise RuntimeError("boom")
        assert store.version == 1
        assert store.history()[-1].version == 1

    def test_commit_hooks_see_record_version(self, store):
        versions = []
        store.on_commit(lambda record: versions.append(record.version))
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        aborted = session.transaction()
        aborted.add_edge("x", "y", "z")
        aborted.abort()
        with session.transaction() as txn:
            txn.add_edge("b", "c", "y")
        assert versions == [1, 2]

    def test_snapshot_versioned_pairs_graph_and_version(self, store):
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        version, graph = store.snapshot_versioned()
        assert version == 1
        assert graph.has_edge("a", "b", "x")

    def test_as_insertions(self, store):
        session = store.session()
        with session.transaction() as txn:
            txn.add_node("lonely")
            txn.add_edge("a", "b", EdgeLabel("link"))
        facts, new_nodes = store.history()[-1].as_insertions()
        assert facts == {"link": {("a", "b")}}
        assert ("lonely",) in new_nodes
        with session.transaction() as txn:
            txn.add_edge("b", "c", "link")
            txn.remove_edge("b", "c", "link")
        assert store.history()[-1].as_insertions() is None

    def test_node_label_versions(self, store):
        session = store.session()
        with session.transaction() as txn:
            txn.add_node("a", label="old")
        with session.transaction() as txn:
            txn.set_node_label("a", "new")
        assert store.graph_at(1).node_label("a") == "old"
        assert store.graph.node_label("a") == "new"


class TestLoadingAndQueries:
    def test_load_graph_single_version(self, store):
        store.load_graph(figure12_graph())
        assert store.version == 1
        assert store.graph.edge_count() == len(figure12_graph().edges)

    def test_load_database(self, store):
        from repro.datalog.database import Database

        db = Database.from_facts({"link": [("a", "b"), ("b", "c")]})
        store.load_database(db)
        assert store.graph.has_edge("a", "b", EdgeLabel("link"))

    def test_rpq_over_store(self, store):
        store.load_graph(figure12_graph())
        assert "tokyo" in store.rpq("CP+", source="rome")
        pairs = store.rpq("AF AF")
        assert ("rome", "tokyo") in pairs

    def test_graphlog_over_store(self, store):
        from repro.datalog.database import Database

        db = Database.from_facts({"link": [("a", "b"), ("b", "c")]})
        store.load_database(db)
        query = parse_graphical_query(
            """
            define (X) -[reach]-> (Y) {
                (X) -[link+]-> (Y);
            }
            """
        )
        assert ("a", "c") in store.answers(query, "reach")


class TestSubscribers:
    def test_failing_subscriber_does_not_break_commit(self, store):
        seen = []

        def bad(record):
            raise RuntimeError("subscriber boom")

        store.subscribe(bad)
        store.subscribe(seen.append)
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        # The commit landed, the healthy subscriber ran, the failure counted.
        assert store.version == 1
        assert [r.version for r in seen] == [1]
        assert store.stats()["subscriber_failures"] == 1

    def test_unsubscribe_during_dispatch_is_safe(self, store):
        calls = []

        def self_removing(record):
            calls.append(record.version)
            store.unsubscribe(self_removing)

        store.subscribe(self_removing)
        store.subscribe(lambda record: calls.append(-record.version))
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        with session.transaction() as txn:
            txn.add_edge("b", "c", "x")
        # First commit notifies both (the snapshot taken before dispatch);
        # the second only the surviving lambda.
        assert calls == [1, -1, -2]

    def test_failure_in_one_does_not_skip_later_subscribers(self, store):
        order = []
        store.subscribe(lambda r: order.append("first"))

        def bad(record):
            order.append("bad")
            raise ValueError("boom")

        store.subscribe(bad)
        store.subscribe(lambda r: order.append("last"))
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        assert order == ["first", "bad", "last"]


class TestHistoryTruncation:
    def fill(self, store, n):
        session = store.session()
        for i in range(n):
            with session.transaction() as txn:
                txn.add_edge(f"n{i}", f"n{i + 1}", "x")

    def test_truncate_keeps_recent_records(self, store):
        self.fill(store, 6)
        dropped = store.truncate_history(keep_last=2)
        assert dropped == 4
        assert [r.version for r in store.history()] == [5, 6]
        assert store.stats()["retained_records"] == 2
        assert store.stats()["base_version"] == 4

    def test_graph_at_selects_by_record_version_after_truncation(self, store):
        self.fill(store, 6)
        store.truncate_history(keep_last=3)
        # Retained records carry versions 4..6; position-based indexing
        # would hand back the wrong snapshots here.
        for version in (4, 5, 6):
            assert store.graph_at(version).edge_count() == version
        assert store.graph_at(6).has_edge("n5", "n6", "x")
        assert not store.graph_at(4).has_node("n5")

    def test_graph_at_below_base_fails_without_durability(self, store):
        self.fill(store, 5)
        store.truncate_history(keep_last=1)
        with pytest.raises(StoreError, match="predates the retained history"):
            store.graph_at(2)

    def test_truncate_all_history(self, store):
        self.fill(store, 3)
        assert store.truncate_history() == 3
        assert store.history() == []
        assert store.graph_at(3).edge_count() == 3
        # New commits build on the folded base.
        self.fill(store, 1)
        assert store.version == 4

    def test_truncate_noop_when_short(self, store):
        self.fill(store, 2)
        assert store.truncate_history(keep_last=5) == 0
        assert len(store.history()) == 2

    def test_truncate_rejects_negative(self, store):
        with pytest.raises(StoreError):
            store.truncate_history(keep_last=-1)
