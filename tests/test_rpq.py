"""Tests for the RPQ engine: regexes, automata, evaluation, simple paths."""

import pytest

from repro.errors import ParseError, RegexError
from repro.graphs.multigraph import LabeledMultigraph
from repro.rpq.automaton import compile_regex, determinize, minimize, thompson
from repro.rpq.evaluate import RPQEvaluator, rpq_pairs
from repro.rpq.regex import Concat, Epsilon, Opt, Plus, Sym, Union, concat, parse_regex, sym, union
from repro.rpq.simple_paths import has_regular_simple_path, regular_simple_paths


class TestRegexParser:
    def test_plus(self):
        assert parse_regex("CP+") == Plus(Sym("CP"))

    def test_union_and_concat(self):
        expr = parse_regex("(AA | CP) UA")
        assert isinstance(expr, Concat)
        assert isinstance(expr.left, Union)

    def test_inverted_symbol(self):
        assert parse_regex("-a") == Sym("a", inverted=True)

    def test_inversion_only_on_symbols(self):
        with pytest.raises(RegexError):
            parse_regex("-(a b)")

    def test_epsilon(self):
        assert parse_regex("()") == Epsilon()

    def test_postfix_stack(self):
        expr = parse_regex("a+?")
        assert isinstance(expr, Opt)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_regex("a )")

    def test_symbols(self):
        expr = parse_regex("(a | -b) c*")
        assert expr.symbols() == {("a", False), ("b", True), ("c", False)}


def _accepts(regex_text, word):
    return compile_regex(parse_regex(regex_text)).accepts(word)


class TestAutomata:
    @pytest.mark.parametrize(
        "regex,accepted,rejected",
        [
            ("a", [["a"]], [[], ["a", "a"], ["b"]]),
            ("a b", [["a", "b"]], [["a"], ["b", "a"]]),
            ("a | b", [["a"], ["b"]], [["a", "b"], []]),
            ("a*", [[], ["a"], ["a"] * 5], [["b"]]),
            ("a+", [["a"], ["a", "a"]], [[]]),
            ("a?", [[], ["a"]], [["a", "a"]]),
            ("(a | b)* c", [["c"], ["a", "b", "c"]], [["a", "b"], ["c", "c"]]),
            ("a (b a)*", [["a"], ["a", "b", "a"]], [["a", "b"]]),
        ],
    )
    def test_acceptance(self, regex, accepted, rejected):
        for word in accepted:
            assert _accepts(regex, word), (regex, word)
        for word in rejected:
            assert not _accepts(regex, word), (regex, word)

    def test_nfa_accepts_empty(self):
        assert thompson(parse_regex("a*")).accepts_empty()
        assert not thompson(parse_regex("a+")).accepts_empty()

    def test_minimization_preserves_language(self):
        import itertools

        regex = parse_regex("(a | b)* a b")
        big = determinize(thompson(regex))
        small = minimize(big)
        assert small.n_states <= big.n_states
        for length in range(5):
            for word in itertools.product("ab", repeat=length):
                word = [(c, False) for c in word]
                assert big.accepts(word) == small.accepts(word)

    def test_minimization_reduces_redundant_states(self):
        # (a a) | (a a) determinizes with duplicated paths; minimization
        # should reach the canonical 3-live-state machine.
        regex = parse_regex("(a a) | (a a)")
        small = minimize(determinize(thompson(regex)))
        assert small.n_states <= 3


@pytest.fixture
def airline_graph():
    g = LabeledMultigraph()
    for a, b in [
        ("rome", "geneva"),
        ("geneva", "montreal"),
        ("montreal", "toronto"),
        ("toronto", "tokyo"),
    ]:
        g.add_edge(a, b, "CP")
    g.add_edge("rome", "paris", "AF")
    g.add_edge("paris", "tokyo", "AF")
    return g


class TestEvaluation:
    def test_targets(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        assert evaluator.targets("CP+", "rome") == {
            "geneva",
            "montreal",
            "toronto",
            "tokyo",
        }

    def test_pairs(self, airline_graph):
        pairs = rpq_pairs(airline_graph, "CP CP")
        assert ("rome", "montreal") in pairs
        assert ("rome", "geneva") not in pairs

    def test_star_includes_self(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        assert "rome" in evaluator.targets("CP*", "rome")

    def test_holds(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        assert evaluator.holds("(CP | AF)+", "rome", "tokyo")
        assert not evaluator.holds("AF CP", "rome", "tokyo")

    def test_inverted_traversal(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        assert evaluator.targets("-CP", "geneva") == {"rome"}

    def test_mixed_inversion_path(self, airline_graph):
        # forward to tokyo by CP+, back one AF edge lands in paris
        evaluator = RPQEvaluator(airline_graph)
        assert "paris" in evaluator.targets("CP+ -AF", "rome")

    def test_sources_restriction(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        pairs = evaluator.pairs("CP+", sources=["geneva"])
        assert all(source == "geneva" for source, _ in pairs)

    def test_witness_path_shortest(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        path = evaluator.witness_path("CP+", "rome", "montreal")
        assert [e.target for e in path] == ["geneva", "montreal"]

    def test_witness_path_none(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        assert evaluator.witness_path("AF+", "geneva", "rome") is None

    def test_matching_edges_highlight(self, airline_graph):
        evaluator = RPQEvaluator(airline_graph)
        edges = evaluator.matching_edges("CP+", sources=["rome"])
        labels = {e.label for e in edges}
        assert labels == {"CP"}
        assert len(edges) == 4

    def test_parallel_edges(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("a", "b", "y")
        evaluator = RPQEvaluator(g)
        assert evaluator.targets("x | y", "a") == {"b"}

    def test_cyclic_graph_terminates(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "a", "x")
        assert RPQEvaluator(g).targets("x+", "a") == {"a", "b"}


class TestSimplePaths:
    def test_cycle_limits_simple_paths(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "a", "x")
        paths = regular_simple_paths(g, "x+", "a")
        # a->b only: a->b->a revisits a.
        assert len(paths) == 1

    def test_empty_path_included_for_star(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        paths = regular_simple_paths(g, "x*", "a")
        assert [] in paths

    def test_target_filter(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "c", "x")
        paths = regular_simple_paths(g, "x+", "a", target="c")
        assert len(paths) == 1
        assert [e.target for e in paths[0]] == ["b", "c"]

    def test_max_paths_cap(self):
        g = LabeledMultigraph()
        for i in range(5):
            g.add_edge("a", f"b{i}", "x")
        paths = regular_simple_paths(g, "x", "a", max_paths=2)
        assert len(paths) == 2

    def test_max_length_cap(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "c", "x")
        paths = regular_simple_paths(g, "x+", "a", max_length=1)
        assert all(len(p) <= 1 for p in paths)

    def test_decision_form(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        assert has_regular_simple_path(g, "x", "a", "b")
        assert not has_regular_simple_path(g, "x x", "a", "b")

    def test_simple_vs_unrestricted_divergence(self):
        # The only path matching 'x x x y' from a to t is a->b->c->b->t,
        # which revisits b; so the RPQ holds but no *simple* path matches.
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "c", "x")
        g.add_edge("c", "b", "x")
        g.add_edge("b", "t", "y")
        evaluator = RPQEvaluator(g)
        assert evaluator.holds("x x x y", "a", "t")
        assert not has_regular_simple_path(g, "x x x y", "a", "t")
