"""Unit tests for the distributed-tracing building blocks: trace context
wire round-trips, the deterministic head sampler, span identity on the
tracer, span-tree flattening, cross-node assembly, the span sink, and the
persistent node identity."""

import json
import logging
import threading

import pytest

from repro import obs
from repro.errors import ProtocolError
from repro.obs import context as trace_context
from repro.obs import nodeid
from repro.obs.assemble import assemble, render_trace
from repro.obs.context import RateSampler, TraceContext, new_span_id
from repro.obs.logs import (
    JsonLogFormatter,
    RequestIdFilter,
    get_node_id,
    set_node_prefix,
)
from repro.obs.spansink import SpanSink
from repro.obs.trace import TraceRing, flatten_span_tree


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext("abc-000001", "def-s00002", True)
        doc = ctx.to_wire()
        back = TraceContext.from_wire(json.loads(json.dumps(doc)))
        assert back.trace_id == "abc-000001"
        assert back.parent_span_id == "def-s00002"
        assert back.sampled is True

    def test_parent_omitted_when_none(self):
        doc = TraceContext("abc", None, False).to_wire()
        assert "parent_span_id" not in doc
        back = TraceContext.from_wire(doc)
        assert back.parent_span_id is None
        assert back.sampled is False

    def test_child_reparents_only(self):
        ctx = TraceContext("abc", "p1", True)
        child = ctx.child("p2")
        assert child.trace_id == "abc"
        assert child.parent_span_id == "p2"
        assert child.sampled is True

    @pytest.mark.parametrize(
        "doc",
        [
            "not-a-dict",
            {"trace_id": ""},
            {"trace_id": 42},
            {},
            {"trace_id": "ok", "parent_span_id": ""},
            {"trace_id": "ok", "parent_span_id": 7},
            {"trace_id": "ok", "sampled": "yes"},
        ],
    )
    def test_malformed_wire_rejected(self, doc):
        with pytest.raises(ProtocolError):
            TraceContext.from_wire(doc)

    def test_ambient_binding(self):
        assert trace_context.current() is None
        with trace_context.start(sampled=True) as ctx:
            assert trace_context.current() is ctx
            assert ctx.trace_id
        assert trace_context.current() is None

    def test_ambient_not_shared_across_threads(self):
        seen = []
        with trace_context.start():
            thread = threading.Thread(
                target=lambda: seen.append(trace_context.current())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestRateSampler:
    def test_zero_never_samples(self):
        sampler = RateSampler(0.0)
        assert not sampler.enabled
        assert not any(sampler.sample() for _ in range(100))

    def test_one_always_samples(self):
        sampler = RateSampler(1.0)
        assert sampler.enabled
        assert all(sampler.sample() for _ in range(100))

    def test_fraction_is_exact(self):
        sampler = RateSampler(0.1)
        assert sum(sampler.sample() for _ in range(1000)) == 100

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            RateSampler(-0.1)
        with pytest.raises(ValueError):
            RateSampler(1.5)


class TestSpanIdentity:
    def test_span_ids_unique(self):
        ids = {new_span_id() for _ in range(100)}
        assert len(ids) == 100

    def test_spans_carry_ids_and_parents(self):
        with obs.tracing("request", op="q") as tracer:
            with obs.span("evaluate"):
                with obs.span("stratum"):
                    pass
        root = tracer.root
        evaluate = root.children[0]
        stratum = evaluate.children[0]
        assert root.span_id and evaluate.span_id and stratum.span_id
        assert root.parent_span_id is None
        assert evaluate.parent_span_id == root.span_id
        assert stratum.parent_span_id == evaluate.span_id
        assert root.start_ts is not None

    def test_remote_parent_links_root(self):
        ctx = TraceContext("trace-1", "remote-s1", True)
        with obs.tracing("request", context=ctx) as tracer:
            pass
        assert tracer.trace_id == "trace-1"
        assert tracer.root.parent_span_id == "remote-s1"

    def test_flatten_span_tree(self):
        with obs.tracing("request") as tracer:
            with obs.span("a"):
                with obs.span("b"):
                    pass
            with obs.span("c"):
                pass
        spans = flatten_span_tree(tracer.root, node_id="n1")
        assert [s["name"] for s in spans] == ["request", "a", "b", "c"]
        assert all(s["node_id"] == "n1" for s in spans)
        by_name = {s["name"]: s for s in spans}
        assert by_name["b"]["parent_span_id"] == by_name["a"]["span_id"]
        assert by_name["c"]["parent_span_id"] == by_name["request"]["span_id"]
        json.dumps(spans)  # JSON-ready

    def test_ring_find_by_trace_id(self):
        ring = TraceRing(capacity=4)
        ring.record({"trace_id": "t1", "op": "a"})
        ring.record({"trace_id": "t2", "op": "b"})
        ring.record({"trace_id": "t1", "op": "c"})
        assert [e["op"] for e in ring.find("t1")] == ["a", "c"]
        assert ring.find("missing") == []


class TestAssembly:
    def _span(self, span_id, parent, name, start, node="n1"):
        return {
            "span_id": span_id,
            "parent_span_id": parent,
            "name": name,
            "start_ts": start,
            "elapsed_ms": 1.0,
            "attrs": {},
            "node_id": node,
        }

    def test_cross_node_forest(self):
        spans = [
            self._span("s2", "s1", "request", 2.0, node="n2"),
            self._span("s1", None, "route", 1.0, node="n1"),
            self._span("s3", "s2", "evaluate", 3.0, node="n2"),
        ]
        roots = assemble(spans)
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "route"
        child = roots[0]["children"][0]
        assert child["span"]["name"] == "request"
        assert child["children"][0]["span"]["name"] == "evaluate"

    def test_orphaned_parent_becomes_root(self):
        spans = [self._span("s9", "evicted", "late", 5.0)]
        roots = assemble(spans)
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "late"

    def test_siblings_sorted_by_start(self):
        spans = [
            self._span("r", None, "root", 0.0),
            self._span("b", "r", "second", 2.0),
            self._span("a", "r", "first", 1.0),
        ]
        roots = assemble(spans)
        names = [c["span"]["name"] for c in roots[0]["children"]]
        assert names == ["first", "second"]

    def test_render_names_nodes(self):
        spans = [
            self._span("s1", None, "route", 1.0, node="router"),
            self._span("s2", "s1", "request", 2.0, node="backend"),
        ]
        text = render_trace("t1", spans)
        assert "trace t1" in text
        assert "2 node(s)" in text
        assert "[router] route" in text
        assert "[backend] request" in text


class TestSpanSink:
    def test_exports_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = SpanSink(str(path))
        sink.export({"trace_id": "t1", "spans": []})
        sink.export({"trace_id": "t2", "spans": []})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["trace_id"] for line in lines] == ["t1", "t2"]
        assert sink.stats()["exported"] == 2

    def test_rotation_keeps_one_generation(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = SpanSink(str(path), max_bytes=4096)
        record = {"trace_id": "t", "pad": "x" * 512}
        for _ in range(20):
            sink.export(record)
        assert sink.stats()["rotations"] >= 1
        assert path.exists()
        assert (tmp_path / "spans.jsonl.1").exists()

    def test_unserializable_counts_error_not_raise(self, tmp_path):
        sink = SpanSink(str(tmp_path / "spans.jsonl"))
        circular = {}
        circular["self"] = circular
        sink.export(circular)
        assert sink.stats()["export_errors"] == 1

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SpanSink(str(tmp_path / "s.jsonl"), max_bytes=16)


class TestNodeId:
    def test_persisted_and_stable(self, tmp_path):
        first = nodeid.load_or_create_node_id(str(tmp_path))
        second = nodeid.load_or_create_node_id(str(tmp_path))
        assert first == second
        stored = json.loads((tmp_path / "node_id.json").read_text())
        assert stored["node_id"] == first

    def test_ephemeral_without_data_dir(self):
        a = nodeid.load_or_create_node_id(None)
        b = nodeid.load_or_create_node_id(None)
        assert a and b and a != b

    def test_corrupt_file_replaced(self, tmp_path):
        (tmp_path / "node_id.json").write_text("not json")
        node_id = nodeid.load_or_create_node_id(str(tmp_path))
        assert nodeid.load_node_id(str(tmp_path)) == node_id


class TestNodeLogField:
    def test_log_records_carry_node_id(self):
        old = get_node_id()
        try:
            set_node_prefix("nodeabc")
            assert get_node_id() == "nodeabc"
            logger = logging.getLogger("repro.test.node")
            record = logger.makeRecord(
                logger.name, logging.INFO, __file__, 1, "hi", (), None
            )
            RequestIdFilter().filter(record)
            payload = json.loads(JsonLogFormatter().format(record))
            assert payload["node"] == "nodeabc"
        finally:
            if old is not None:
                set_node_prefix(old)
