"""Tests that every paper figure reproduces with the expected content."""

import pytest

from repro.figures import ALL_FIGURES, fig01, fig02, fig03, fig04, fig05, fig06
from repro.figures import fig07, fig08, fig09, fig10, fig11, fig12


class TestAllFigures:
    @pytest.mark.parametrize("name", sorted(ALL_FIGURES))
    def test_render_produces_text(self, name):
        text = ALL_FIGURES[name].render()
        assert isinstance(text, str) and len(text) > 20


class TestFig01:
    def test_graph_shape(self):
        artifacts = fig01.reproduce()
        graph = artifacts["graph"]
        assert graph.node_label("ottawa") == frozenset({"capital"})
        # flights appear as nodes connected by from/to edges
        assert graph.has_node(21)

    def test_database_relations(self):
        db = fig01.reproduce()["database"]
        assert {"from", "to", "departure", "arrival", "capital"} <= db.predicates


class TestFig02:
    def test_answers(self):
        artifacts = fig02.reproduce()
        answers = artifacts["answers"]
        # dora descends from adam (via beth) but not from gina.
        assert ("adam", "dora", "gina") in answers
        # beth descends from adam, so (.., beth, adam) never appears.
        assert all(not (p3 == "beth" and p2 == "adam") for _p1, p3, p2 in answers)

    def test_query_structure(self):
        q = fig02.query()
        graph = q.graphs[0]
        assert graph.head_predicate == "not-desc-of"
        assert len(graph.edges) == 2


class TestFig03:
    def test_matches_paper_program(self):
        text = fig03.reproduce()["text"]
        assert (
            "not-desc-of(P1, P3, P2) :- descendant-tc(P1, P3), "
            "not descendant-tc(P2, P3), person(P2)." in text
        )
        assert text.count("descendant-tc") >= 4  # head + bodies of TC pair

    def test_predicates(self):
        assert fig03.reproduce()["predicates"] == ["descendant-tc", "not-desc-of"]


class TestFig04:
    def test_feasible_requires_time_order(self):
        artifacts = fig04.reproduce()
        feasible = artifacts["feasible"]
        db = artifacts["database"]
        arrivals = dict(db.facts("arrival"))
        departures = dict(db.facts("departure"))
        to_city = dict(db.facts("to"))
        from_city = dict(db.facts("from"))
        for f1, f2 in feasible:
            assert to_city[f1] == from_city[f2]
            assert arrivals[f1] < departures[f2]

    def test_stop_connected_needs_two_flights(self):
        artifacts = fig04.reproduce()
        # toronto -> ottawa is a single direct flight (21); with at least two
        # feasible flights the pair (toronto, ottawa) requires a real chain.
        stop = artifacts["stop_connected"]
        assert ("toronto", "montreal") in stop  # 21 then 32
        assert ("toronto", "ottawa") not in stop  # only direct


class TestFig05:
    def test_answers_include_self_and_ancestors_friends(self):
        answers = fig05.reproduce()["answers"]
        mine = {p2 for p1, p2 in answers if p1 == "me"}
        # me's own friend carol (zero-step star), father's friend alice,
        # grandfather's friend dave lives in montreal (excluded),
        # grandmother nora's friend erin (toronto, included).
        assert mine == {"carol", "alice", "erin"}

    def test_ottawa_friend_excluded(self):
        answers = fig05.reproduce()["answers"]
        assert all(p2 != "bob" for _p1, p2 in answers)


class TestFig06:
    def test_expected_modules(self):
        assert fig06.reproduce()["modules"] == ["buffers", "netd"]

    def test_logger_circle_without_library_excluded(self):
        assert "logger" not in fig06.reproduce()["modules"]
        assert "shell" not in fig06.reproduce()["modules"]


class TestFig07:
    def test_trace_structure(self):
        artifacts = fig07.reproduce()
        assert artifacts["steps"][0]["component"] == ["sg"]
        assert artifacts["constants"]["start"] == "c"


class TestFig08:
    def test_classification(self):
        flags = fig08.reproduce()["classification"]
        assert flags["linear"] and flags["stratified"] and not flags["tc"]


class TestFig09:
    def test_output_stc_and_equivalent(self):
        artifacts = fig09.reproduce()
        assert artifacts["is_stc"]
        assert artifacts["equivalent_on_sample"], artifacts["differences"]

    def test_signature_constant_is_sg(self):
        text = fig09.reproduce()["text"]
        assert "e(c, c, c, X, X, sg)" in text


class TestFig10:
    def test_all_checks_pass(self):
        artifacts = fig10.reproduce()
        assert artifacts["all_pass"], artifacts["checks"]


class TestFig11:
    def test_earlier_start_longest_sums(self):
        earlier = fig11.reproduce()["earlier_start"]
        # design -> integrate: max(build-ui 8, build-core 12) + 4 = 16
        assert earlier[("design", "integrate")] == 16
        # design -> ship: 12 + 4 + 6 + 1 = 23
        assert earlier[("design", "ship")] == 23

    def test_delay_propagation(self):
        artifacts = fig11.reproduce(task="design", delay=7)
        delayed = artifacts["delayed"]
        # design start 0, duration 5, delay 7 -> finishes 12;
        # build-core may then start at 12 (was 5).
        assert delayed["build-core"] == 12

    def test_no_impact_without_delay(self):
        from repro.figures.fig11 import delayed_start
        from repro.datasets.tasks import figure11_database

        assert delayed_start(figure11_database(), "design", 0) == {}


class TestFig12:
    def test_scale_cities(self):
        artifacts = fig12.reproduce()
        assert artifacts["scales"] == ["geneva", "montreal", "toronto", "vancouver"]

    def test_result_graph_has_loops(self):
        result_graph = fig12.reproduce()["result_graph"]
        assert result_graph.has_edge("geneva", "geneva", "RT-scale")

    def test_highlight_only_cp(self):
        dot = fig12.reproduce()["highlight_dot"]
        for line in dot.splitlines():
            if "color=red" in line:
                assert "CP" in line
