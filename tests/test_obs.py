"""Tests for the span-based tracing subsystem (repro.obs)."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core.dsl import parse_graphical_query
from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.errors import ProtocolError
from repro.ham.store import HAMStore
from repro.ham.views import ViewManager
from repro.service.server import QueryService

TC_PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
"""

REACH_QUERY = """
define (X) -[reach]-> (Y) {
    (X) -[link+]-> (Y);
}
"""


class TestSpanTree:
    def test_disabled_by_default(self):
        assert obs.tracer() is obs.NULL_TRACER
        span = obs.span("anything", key=1)
        assert span is obs.NULL_SPAN
        assert not span
        with span as inner:
            inner.annotate(x=1)
            inner.count("n")
            inner.append("items", "v")
        # All of the above were no-ops on the shared null singleton.
        assert obs.tracer().root is None

    def test_tracing_builds_a_tree(self):
        with obs.tracing("root", a=1) as tr:
            assert obs.tracer() is tr
            with obs.span("child1") as c1:
                c1.annotate(n=3)
                with obs.span("grand"):
                    pass
            with obs.span("child2"):
                pass
        assert obs.tracer() is obs.NULL_TRACER  # reset on exit
        root = tr.root
        assert root.name == "root"
        assert root.attrs["a"] == 1
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert root.children[0].attrs["n"] == 3
        assert root.children[0].children[0].name == "grand"
        assert root.elapsed_ms is not None and root.elapsed_ms >= 0

    def test_count_and_append(self):
        with obs.tracing("t") as tr:
            with obs.span("work") as span:
                span.count("hits")
                span.count("hits", 2)
                span.append("rounds", {"n": 1})
                span.append("rounds", {"n": 2})
        work = tr.root.find("work")
        assert work.attrs["hits"] == 3
        assert work.attrs["rounds"] == [{"n": 1}, {"n": 2}]

    def test_exception_annotates_error_and_unwinds(self):
        with pytest.raises(ValueError):
            with obs.tracing("t") as tr:
                with obs.span("boom"):
                    raise ValueError("nope")
        boom = tr.root.find("boom")
        assert "ValueError" in boom.attrs["error"]
        assert boom.elapsed_ms is not None
        # The stack unwound: tracing() reset the ambient tracer.
        assert obs.tracer() is obs.NULL_TRACER

    def test_to_dict_is_json_ready(self):
        with obs.tracing("t") as tr:
            with obs.span("child", n=2):
                pass
        tree = tr.root.to_dict()
        encoded = json.loads(json.dumps(tree))
        assert encoded["name"] == "t"
        assert encoded["children"][0]["name"] == "child"
        assert encoded["children"][0]["attrs"]["n"] == 2

    def test_render_draws_branches(self):
        with obs.tracing("t") as tr:
            with obs.span("first"):
                with obs.span("inner"):
                    pass
            with obs.span("last"):
                pass
        text = tr.root.render()
        assert "├── first" in text
        assert "└── last" in text
        assert "inner" in text

    def test_find_all(self):
        with obs.tracing("t") as tr:
            for _ in range(3):
                with obs.span("leaf"):
                    pass
        assert len(tr.root.find_all("leaf")) == 3
        assert tr.root.find("missing") is None

    def test_tracer_is_context_local(self):
        """A tracer activated in one thread is invisible to another."""
        seen = []

        def other():
            seen.append(obs.tracer())

        with obs.tracing("t"):
            worker = threading.Thread(target=other)
            worker.start()
            worker.join()
        assert seen == [obs.NULL_TRACER]


class TestTraceRing:
    def test_bounded_and_ordered(self):
        ring = obs.TraceRing(capacity=2)
        for i in range(4):
            ring.record({"i": i})
        assert [e["i"] for e in ring.snapshot()] == [2, 3]
        assert ring.stats() == {"capacity": 2, "size": 2, "recorded": 4}

    def test_snapshot_limit(self):
        ring = obs.TraceRing(capacity=8)
        for i in range(5):
            ring.record(i)
        assert ring.snapshot(limit=2) == [3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            obs.TraceRing(capacity=0)


class TestEngineTracing:
    def test_per_stratum_iterations_and_deltas(self):
        program = parse_program(TC_PROGRAM)
        with obs.tracing("t") as tr:
            Engine().evaluate(program, Database())
        evaluate = tr.root.find("engine.evaluate")
        assert evaluate.attrs["iterations"] >= 2
        strata = evaluate.find_all("engine.stratum")
        assert strata
        tc_span = next(s for s in strata if "tc" in s.attrs["predicates"])
        iterations = tc_span.attrs["iterations"]
        assert len(iterations) >= 2
        for entry in iterations:
            assert set(entry) == {"iteration", "delta_in", "derived"}
            assert entry["delta_in"]  # per-predicate delta sizes
        assert tc_span.attrs["seed_delta"] == {"tc": 4}
        assert sum(tc_span.attrs["rule_firings"].values()) >= 2

    def test_naive_method_traces_too(self):
        program = parse_program(TC_PROGRAM)
        with obs.tracing("t") as tr:
            Engine(method="naive").evaluate(program, Database())
        stratum = next(
            s
            for s in tr.root.find_all("engine.stratum")
            if "tc" in s.attrs["predicates"]
        )
        assert stratum.attrs["iterations"]
        assert stratum.attrs["rule_firings"]

    def test_disabled_tracing_same_answers(self):
        program = parse_program(TC_PROGRAM)
        result = Engine().evaluate(program, Database())
        # 4-cycle: the closure is every ordered pair.
        assert len(result.facts("tc")) == 16


class TestDRedTracing:
    def test_view_maintenance_records_rounds(self):
        store = HAMStore()
        session = store.session()
        with session.transaction() as txn:
            for a, b in [("a", "b"), ("b", "c"), ("c", "d")]:
                txn.add_edge(a, b, "link")
        manager = ViewManager(store)
        manager.register("reach", parse_graphical_query(REACH_QUERY))
        with obs.tracing("commit") as tr:
            with session.transaction() as txn:
                txn.remove_edge("b", "c", "link")
        maintain = tr.root.find("dred.maintain")
        assert maintain is not None
        assert maintain.attrs["delta_minus"] == {"link": 1}
        group = maintain.find("dred.group")
        assert group is not None
        if group.attrs["technique"] == "dred":
            assert "overdelete_rounds" in group.attrs


class TestExplainOp:
    def _service(self):
        store = HAMStore()
        session = store.session()
        with session.transaction() as txn:
            for a, b in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]:
                txn.add_edge(a, b, "link")
        return QueryService(store=store)

    def test_explain_returns_span_tree_with_iterations(self):
        service = self._service()
        out = service.execute({"op": "explain", "query": REACH_QUERY})
        assert out["cache"] == "bypass"
        result = out["result"]
        assert result["relations"] == {"reach": result["count"]}
        assert set(result["phases"]) == {"prepare", "evaluate", "encode"}
        tree = json.dumps(result["trace"])
        for needle in (
            "translate.lambda",
            "stratify",
            "engine.stratum",
            "delta_in",
            "seed_delta",
        ):
            assert needle in tree, needle
        assert "engine.stratum" in result["text"]

    def test_profile_omits_rendered_text(self):
        service = self._service()
        out = service.execute({"op": "profile", "query": REACH_QUERY})
        assert "text" not in out["result"]
        assert "trace" in out["result"]

    def test_explain_bypasses_result_cache(self):
        service = self._service()
        service.execute({"op": "graphlog", "query": REACH_QUERY})
        out = service.execute({"op": "explain", "query": REACH_QUERY})
        assert out["cache"] == "bypass"
        # The warm result cache still answers the plain query.
        assert service.execute({"op": "graphlog", "query": REACH_QUERY})["cache"] == "hit"

    def test_explain_records_into_the_trace_ring(self):
        service = self._service()
        service.execute({"op": "explain", "query": REACH_QUERY})
        service.execute({"op": "profile", "query": REACH_QUERY})
        assert service.traces.stats()["size"] == 2
        entry = service.traces.snapshot()[-1]
        assert entry["target"] == "graphlog"
        assert entry["trace"]["name"] == "explain"
        stats = service.execute({"op": "stats"})["result"]
        assert stats["traces"]["recorded"] == 2

    def test_explain_validates_target(self):
        service = self._service()
        with pytest.raises(ProtocolError):
            service.execute({"op": "explain", "query": "x", "target": "update"})
        with pytest.raises(ProtocolError):
            service.execute({"op": "explain", "query": "   "})

    def test_phase_latencies_reported_in_stats(self):
        service = self._service()
        service.execute({"op": "graphlog", "query": REACH_QUERY})
        phases = service.execute({"op": "stats"})["result"]["metrics"]["phases"]
        for name in ("plan", "cache_lookup", "evaluate", "encode"):
            assert phases[name]["count"] >= 1
            assert phases[name]["total_ms"] >= 0
