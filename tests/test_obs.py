"""Tests for the span-based tracing subsystem (repro.obs)."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core.dsl import parse_graphical_query
from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.errors import ProtocolError
from repro.ham.store import HAMStore
from repro.ham.views import ViewManager
from repro.service.server import QueryService

TC_PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
"""

REACH_QUERY = """
define (X) -[reach]-> (Y) {
    (X) -[link+]-> (Y);
}
"""


class TestSpanTree:
    def test_disabled_by_default(self):
        assert obs.tracer() is obs.NULL_TRACER
        span = obs.span("anything", key=1)
        assert span is obs.NULL_SPAN
        assert not span
        with span as inner:
            inner.annotate(x=1)
            inner.count("n")
            inner.append("items", "v")
        # All of the above were no-ops on the shared null singleton.
        assert obs.tracer().root is None

    def test_tracing_builds_a_tree(self):
        with obs.tracing("root", a=1) as tr:
            assert obs.tracer() is tr
            with obs.span("child1") as c1:
                c1.annotate(n=3)
                with obs.span("grand"):
                    pass
            with obs.span("child2"):
                pass
        assert obs.tracer() is obs.NULL_TRACER  # reset on exit
        root = tr.root
        assert root.name == "root"
        assert root.attrs["a"] == 1
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert root.children[0].attrs["n"] == 3
        assert root.children[0].children[0].name == "grand"
        assert root.elapsed_ms is not None and root.elapsed_ms >= 0

    def test_count_and_append(self):
        with obs.tracing("t") as tr:
            with obs.span("work") as span:
                span.count("hits")
                span.count("hits", 2)
                span.append("rounds", {"n": 1})
                span.append("rounds", {"n": 2})
        work = tr.root.find("work")
        assert work.attrs["hits"] == 3
        assert work.attrs["rounds"] == [{"n": 1}, {"n": 2}]

    def test_exception_annotates_error_and_unwinds(self):
        with pytest.raises(ValueError):
            with obs.tracing("t") as tr:
                with obs.span("boom"):
                    raise ValueError("nope")
        boom = tr.root.find("boom")
        assert "ValueError" in boom.attrs["error"]
        assert boom.elapsed_ms is not None
        # The stack unwound: tracing() reset the ambient tracer.
        assert obs.tracer() is obs.NULL_TRACER

    def test_to_dict_is_json_ready(self):
        with obs.tracing("t") as tr:
            with obs.span("child", n=2):
                pass
        tree = tr.root.to_dict()
        encoded = json.loads(json.dumps(tree))
        assert encoded["name"] == "t"
        assert encoded["children"][0]["name"] == "child"
        assert encoded["children"][0]["attrs"]["n"] == 2

    def test_render_draws_branches(self):
        with obs.tracing("t") as tr:
            with obs.span("first"):
                with obs.span("inner"):
                    pass
            with obs.span("last"):
                pass
        text = tr.root.render()
        assert "├── first" in text
        assert "└── last" in text
        assert "inner" in text

    def test_find_all(self):
        with obs.tracing("t") as tr:
            for _ in range(3):
                with obs.span("leaf"):
                    pass
        assert len(tr.root.find_all("leaf")) == 3
        assert tr.root.find("missing") is None

    def test_tracer_is_context_local(self):
        """A tracer activated in one thread is invisible to another."""
        seen = []

        def other():
            seen.append(obs.tracer())

        with obs.tracing("t"):
            worker = threading.Thread(target=other)
            worker.start()
            worker.join()
        assert seen == [obs.NULL_TRACER]


class TestTraceRing:
    def test_bounded_and_ordered(self):
        ring = obs.TraceRing(capacity=2)
        for i in range(4):
            ring.record({"i": i})
        assert [e["i"] for e in ring.snapshot()] == [2, 3]
        assert ring.stats() == {"capacity": 2, "size": 2, "recorded": 4}

    def test_snapshot_limit(self):
        ring = obs.TraceRing(capacity=8)
        for i in range(5):
            ring.record(i)
        assert ring.snapshot(limit=2) == [3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            obs.TraceRing(capacity=0)


class TestEngineTracing:
    def test_per_stratum_iterations_and_deltas(self):
        program = parse_program(TC_PROGRAM)
        with obs.tracing("t") as tr:
            Engine().evaluate(program, Database())
        evaluate = tr.root.find("engine.evaluate")
        assert evaluate.attrs["iterations"] >= 2
        strata = evaluate.find_all("engine.stratum")
        assert strata
        tc_span = next(s for s in strata if "tc" in s.attrs["predicates"])
        iterations = tc_span.attrs["iterations"]
        assert len(iterations) >= 2
        for entry in iterations:
            assert set(entry) == {"iteration", "delta_in", "derived"}
            assert entry["delta_in"]  # per-predicate delta sizes
        assert tc_span.attrs["seed_delta"] == {"tc": 4}
        assert sum(tc_span.attrs["rule_firings"].values()) >= 2

    def test_naive_method_traces_too(self):
        program = parse_program(TC_PROGRAM)
        with obs.tracing("t") as tr:
            Engine(method="naive").evaluate(program, Database())
        stratum = next(
            s
            for s in tr.root.find_all("engine.stratum")
            if "tc" in s.attrs["predicates"]
        )
        assert stratum.attrs["iterations"]
        assert stratum.attrs["rule_firings"]

    def test_disabled_tracing_same_answers(self):
        program = parse_program(TC_PROGRAM)
        result = Engine().evaluate(program, Database())
        # 4-cycle: the closure is every ordered pair.
        assert len(result.facts("tc")) == 16


class TestDRedTracing:
    def test_view_maintenance_records_rounds(self):
        store = HAMStore()
        session = store.session()
        with session.transaction() as txn:
            for a, b in [("a", "b"), ("b", "c"), ("c", "d")]:
                txn.add_edge(a, b, "link")
        manager = ViewManager(store)
        manager.register("reach", parse_graphical_query(REACH_QUERY))
        with obs.tracing("commit") as tr:
            with session.transaction() as txn:
                txn.remove_edge("b", "c", "link")
        maintain = tr.root.find("dred.maintain")
        assert maintain is not None
        assert maintain.attrs["delta_minus"] == {"link": 1}
        group = maintain.find("dred.group")
        assert group is not None
        if group.attrs["technique"] == "dred":
            assert "overdelete_rounds" in group.attrs


class TestExplainOp:
    def _service(self):
        store = HAMStore()
        session = store.session()
        with session.transaction() as txn:
            for a, b in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]:
                txn.add_edge(a, b, "link")
        return QueryService(store=store)

    def test_explain_returns_span_tree_with_iterations(self):
        service = self._service()
        out = service.execute({"op": "explain", "query": REACH_QUERY})
        assert out["cache"] == "bypass"
        result = out["result"]
        assert result["relations"] == {"reach": result["count"]}
        assert set(result["phases"]) == {"prepare", "evaluate", "encode"}
        tree = json.dumps(result["trace"])
        for needle in (
            "translate.lambda",
            "stratify",
            "engine.stratum",
            "delta_in",
            "seed_delta",
        ):
            assert needle in tree, needle
        assert "engine.stratum" in result["text"]

    def test_profile_omits_rendered_text(self):
        service = self._service()
        out = service.execute({"op": "profile", "query": REACH_QUERY})
        assert "text" not in out["result"]
        assert "trace" in out["result"]

    def test_explain_bypasses_result_cache(self):
        service = self._service()
        service.execute({"op": "graphlog", "query": REACH_QUERY})
        out = service.execute({"op": "explain", "query": REACH_QUERY})
        assert out["cache"] == "bypass"
        # The warm result cache still answers the plain query.
        assert service.execute({"op": "graphlog", "query": REACH_QUERY})["cache"] == "hit"

    def test_explain_records_into_the_trace_ring(self):
        service = self._service()
        service.execute({"op": "explain", "query": REACH_QUERY})
        service.execute({"op": "profile", "query": REACH_QUERY})
        assert service.traces.stats()["size"] == 2
        entry = service.traces.snapshot()[-1]
        assert entry["target"] == "graphlog"
        assert entry["trace"]["name"] == "explain"
        stats = service.execute({"op": "stats"})["result"]
        assert stats["traces"]["recorded"] == 2

    def test_explain_validates_target(self):
        service = self._service()
        with pytest.raises(ProtocolError):
            service.execute({"op": "explain", "query": "x", "target": "update"})
        with pytest.raises(ProtocolError):
            service.execute({"op": "explain", "query": "   "})

    def test_phase_latencies_reported_in_stats(self):
        service = self._service()
        service.execute({"op": "graphlog", "query": REACH_QUERY})
        phases = service.execute({"op": "stats"})["result"]["metrics"]["phases"]
        for name in ("plan", "cache_lookup", "evaluate", "encode"):
            assert phases[name]["count"] >= 1
            assert phases[name]["total_ms"] >= 0


# --------------------------------------------------------------------------
# Telemetry: histograms, typed registry, exposition, logs, slowlog, export
# --------------------------------------------------------------------------

import io
import logging
import math
import re
import urllib.error
import urllib.request

from repro.obs.export import TelemetryHTTPServer
from repro.obs.logs import (
    JsonLogFormatter,
    RequestIdFilter,
    get_request_id,
    new_request_id,
    request_context,
)
from repro.obs.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricFamily,
    Registry,
    escape_label_value,
)
from repro.obs.slowlog import SlowQueryLog

#: One exposition line: comment, or `name{labels} value`.
_HELP_OR_TYPE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" (?:-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$"
)


def lint_exposition(text):
    """Assert every line of *text* is valid text exposition format 0.0.4."""
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        assert _HELP_OR_TYPE.match(line) or _SAMPLE.match(line), f"bad line: {line!r}"


class TestHistogramData:
    def test_empty(self):
        hist = HistogramData()
        assert hist.count == 0
        assert hist.quantile(0.5) is None

    def test_single_sample_is_every_quantile(self):
        hist = HistogramData()
        hist.observe(0.002)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.002)

    def test_quantiles_clamped_to_observed_range(self):
        hist = HistogramData()
        hist.observe(0.004)
        hist.observe(0.006)
        # Raw interpolation inside the (0.005, 0.01] bucket would say
        # 0.0095; the clamp pins the estimate to the true max.
        assert hist.quantile(0.95) == pytest.approx(0.006)
        assert hist.quantile(0.05) == pytest.approx(0.004)

    def test_quantile_accuracy_on_uniform_samples(self):
        hist = HistogramData()
        for i in range(1, 1001):
            hist.observe(i / 1000.0)  # 1ms .. 1s
        # Bucketed estimates land within the owning bucket of the truth.
        assert hist.quantile(0.5) == pytest.approx(0.5, rel=0.3)
        assert hist.quantile(0.99) == pytest.approx(0.99, rel=0.3)

    def test_merge(self):
        a, b = HistogramData(), HistogramData()
        for v in (0.001, 0.002):
            a.observe(v)
        for v in (0.1, 0.2):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.sum == pytest.approx(0.303)
        assert a.min == pytest.approx(0.001)
        assert a.max == pytest.approx(0.2)

    def test_merge_bounds_mismatch(self):
        with pytest.raises(ValueError):
            HistogramData().merge(HistogramData(bounds=(1.0, 2.0)))

    def test_infinity_bucket(self):
        hist = HistogramData(bounds=(1.0,))
        hist.observe(50.0)
        assert hist.counts[-1] == 1
        assert hist.quantile(0.99) == pytest.approx(50.0)

    def test_cumulative_buckets_end_with_inf(self):
        hist = HistogramData(bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        buckets = hist.cumulative_buckets()
        assert buckets[0] == (1.0, 1)
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == 2


class TestTypedRegistry:
    def test_counter_monotonic(self):
        registry = Registry()
        counter = Counter("t_requests_total", "help", registry=registry)
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("t_depth")
        gauge.set(7)
        gauge.dec(2)
        assert gauge.value == 5

    def test_labeled_children(self):
        counter = Counter("t_ops_total", labelnames=("op",))
        counter.labels("read").inc()
        counter.labels("read").inc()
        counter.labels(op="write").inc()
        family = counter.collect()
        values = {tuple(sorted(s[1].items())): s[2] for s in family.samples}
        assert values[(("op", "read"),)] == 2
        assert values[(("op", "write"),)] == 1

    def test_label_arity_checked(self):
        counter = Counter("t_ops_total", labelnames=("op",))
        with pytest.raises(ValueError):
            counter.labels()
        with pytest.raises(ValueError):
            counter.labels("a", "b")
        with pytest.raises(ValueError):
            counter.inc()  # labeled instrument needs .labels()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad-name")
        with pytest.raises(ValueError):
            Counter("ok_name", labelnames=("bad-label",))
        with pytest.raises(ValueError):
            MetricFamily("x", "nonsense")

    def test_duplicate_registration_rejected(self):
        registry = Registry()
        Counter("t_dup", registry=registry)
        with pytest.raises(ValueError):
            Counter("t_dup", registry=registry)

    def test_collector_callback(self):
        registry = Registry()
        registry.collector(
            lambda: [MetricFamily("t_facts", "gauge").add_sample(3, {"p": "edge"})]
        )
        text = registry.render()
        assert 't_facts{p="edge"} 3' in text
        lint_exposition(text)


class TestExposition:
    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        family = MetricFamily("t_esc", "gauge")
        family.add_sample(1, {"k": 'quo"te\nnl\\slash'})
        rendered = family.render()
        assert '"quo\\"te\\nnl\\\\slash"' in rendered
        lint_exposition(rendered + "\n")

    def test_histogram_rendering(self):
        registry = Registry()
        hist = Histogram(
            "t_seconds", "help text", labelnames=("op",), registry=registry,
            buckets=(0.1, 1.0),
        )
        hist.labels("q").observe(0.05)
        hist.labels("q").observe(5.0)
        text = registry.render()
        assert 't_seconds_bucket{le="0.1",op="q"} 1' in text
        assert 't_seconds_bucket{le="+Inf",op="q"} 2' in text
        assert 't_seconds_count{op="q"} 2' in text
        assert "# TYPE t_seconds histogram" in text
        lint_exposition(text)

    def test_full_registry_lints(self):
        registry = Registry()
        Counter("t_total", "with help", registry=registry).inc()
        Gauge("t_gauge", registry=registry).set(-2.5)
        Histogram("t_hist", registry=registry, buckets=(0.5,)).observe(0.1)
        lint_exposition(registry.render())

    def test_empty_registry_renders_empty(self):
        assert Registry().render() == ""


class TestStructuredLogs:
    def test_request_context(self):
        assert get_request_id() is None
        with request_context() as rid:
            assert get_request_id() == rid
            with request_context("override") as inner:
                assert inner == "override"
                assert get_request_id() == "override"
            assert get_request_id() == rid
        assert get_request_id() is None

    def test_request_ids_unique(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100

    def test_json_formatter_fields(self):
        logger = logging.getLogger("repro.test.json")
        record = logger.makeRecord(
            logger.name, logging.WARNING, __file__, 1,
            "something %s", ("happened",), None,
            extra={"predicate": "edge"},
        )
        RequestIdFilter().filter(record)
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["message"] == "something happened"
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.test.json"
        assert payload["request_id"] == "-"
        assert payload["predicate"] == "edge"

    def test_json_formatter_carries_ambient_request_id(self):
        logger = logging.getLogger("repro.test.json")
        with request_context("rid-42"):
            record = logger.makeRecord(
                logger.name, logging.INFO, __file__, 1, "hi", (), None
            )
            RequestIdFilter().filter(record)
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["request_id"] == "rid-42"

    def test_json_formatter_exception(self):
        logger = logging.getLogger("repro.test.json")
        try:
            raise ValueError("boom")
        except ValueError:
            import sys as _sys

            record = logger.makeRecord(
                logger.name, logging.ERROR, __file__, 1, "failed", (), _sys.exc_info()
            )
        RequestIdFilter().filter(record)
        payload = json.loads(JsonLogFormatter().format(record))
        assert "ValueError: boom" in payload["exc"]

    def test_request_id_not_inherited_by_executor_threads(self):
        # contextvars do NOT flow into plain threads — this pins the fact
        # the service works around by binding the ID inside the worker.
        seen = {}

        def worker():
            seen["ambient"] = get_request_id()

        with request_context("outer"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["ambient"] is None

    def test_configure_logging_idempotent(self):
        from repro.obs.logs import configure_logging

        package_logger = logging.getLogger("repro")
        before = list(package_logger.handlers)
        try:
            stream = io.StringIO()
            configure_logging(level="info", json_output=True, stream=stream)
            configure_logging(level="info", json_output=True, stream=stream)
            added = [
                h for h in package_logger.handlers
                if getattr(h, "_repro_cli_handler", False)
            ]
            assert len(added) == 1
            assert package_logger.propagate  # caplog & embedders still see records
            logging.getLogger("repro.test.configured").info("ping")
            payload = json.loads(stream.getvalue().strip().splitlines()[-1])
            assert payload["message"] == "ping"
        finally:
            package_logger.handlers = before
            package_logger.setLevel(logging.NOTSET)

    def test_configure_logging_rejects_unknown_level(self):
        from repro.obs.logs import configure_logging

        with pytest.raises(ValueError):
            configure_logging(level="loud")


class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.should_record(10_000.0)

    def test_threshold_zero_records_everything(self):
        log = SlowQueryLog(threshold_ms=0.0)
        assert log.enabled
        assert log.should_record(0.0)

    def test_ring_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for i in range(5):
            log.record({"op": "q", "i": i})
        entries = log.snapshot()
        assert [e["i"] for e in entries] == [4, 3, 2]  # newest first
        assert log.stats()["recorded"] == 5
        assert log.stats()["size"] == 3

    def test_snapshot_limit(self):
        log = SlowQueryLog(threshold_ms=0.0)
        for i in range(4):
            log.record({"i": i})
        assert [e["i"] for e in log.snapshot(2)] == [3, 2]

    def test_jsonl_file(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_ms=0.0, path=str(path))
        log.record({"op": "q", "elapsed_ms": 12.5})
        log.record({"op": "r", "elapsed_ms": 7.5})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["op"] for e in lines] == ["q", "r"]
        assert all("ts" in e for e in lines)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


class TestTelemetryEndpoint:
    def _get(self, port, path):
        return urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5)

    def test_metrics_and_healthz(self):
        registry = Registry()
        Counter("t_live_total", "alive", registry=registry).inc()
        endpoint = TelemetryHTTPServer(
            registry.render, lambda: {"status": "ok"}, port=0
        ).start()
        try:
            resp = self._get(endpoint.port, "/metrics")
            assert resp.status == 200
            assert resp.headers["Content-Type"] == CONTENT_TYPE
            body = resp.read().decode()
            assert "t_live_total 1" in body
            lint_exposition(body)
            health = self._get(endpoint.port, "/healthz")
            assert health.status == 200
            assert json.loads(health.read())["status"] == "ok"
        finally:
            endpoint.stop()

    def test_healthz_degraded_is_503(self):
        endpoint = TelemetryHTTPServer(
            lambda: "", lambda: {"status": "degraded", "reason": "wal closed"}, port=0
        ).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(endpoint.port, "/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "degraded"
        finally:
            endpoint.stop()

    def test_health_callback_error_is_503(self):
        def boom():
            raise RuntimeError("sensor failure")

        endpoint = TelemetryHTTPServer(lambda: "", boom, port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(endpoint.port, "/healthz")
            assert excinfo.value.code == 503
            assert "sensor failure" in json.loads(excinfo.value.read())["error"]
        finally:
            endpoint.stop()

    def test_unknown_path_404(self):
        endpoint = TelemetryHTTPServer(lambda: "", lambda: {"status": "ok"}, port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(endpoint.port, "/nope")
            assert excinfo.value.code == 404
        finally:
            endpoint.stop()
