"""Tests for live query subscriptions (repro.subs and the wire path)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import NotMaintainable, SubscriptionError
from repro.graphs.multigraph import LabeledMultigraph
from repro.ham.store import HAMStore
from repro.service.client import ServiceClient
from repro.service.prepared import PreparedQueryCache
from repro.service.server import QueryService, ServiceConfig, ServiceServer
from repro.subs import SubscriptionManager

REACH = "define (X) -[reach]-> (Y) { (X) -[link+]-> (Y); }"


class FakeSink:
    """Stands in for a connection's push sink in manager-level tests."""

    def __init__(self):
        self.notifications = 0

    def notify(self):
        self.notifications += 1


def chain_store():
    """a -link-> b -link-> c."""
    graph = LabeledMultigraph()
    for source, target in (("a", "b"), ("b", "c")):
        graph.add_edge(source, target, "link")
    store = HAMStore()
    store.load_graph(graph)
    return store


def add_edge(store, source, target, label="link"):
    with store.session().transaction() as txn:
        txn.add_edge(source, target, label)
    return store.version


def remove_edge(store, source, target, label="link"):
    with store.session().transaction() as txn:
        txn.remove_edge(source, target, label)
    return store.version


@pytest.fixture
def manager():
    store = chain_store()
    mgr = SubscriptionManager(store)
    yield store, mgr, PreparedQueryCache()
    mgr.close()


class TestSubscriptionManager:
    def test_snapshot_then_ordered_deltas_with_deletions(self, manager):
        store, mgr, plans = manager
        sink = FakeSink()
        plan = plans.get("graphlog", REACH)
        sub, snapshot, version = mgr.subscribe(plan, {"predicate": "reach"}, sink)
        assert version == store.version
        assert snapshot == {"reach": {("a", "b"), ("a", "c"), ("b", "c")}}

        v2 = add_edge(store, "c", "d")
        v3 = remove_edge(store, "a", "b")
        assert sink.notifications >= 1
        frames, disconnect = mgr.drain(sink)
        assert not disconnect
        assert [f["version"] for f in frames] == [v2, v3]
        assert all(f["frame"] == "delta" for f in frames)
        assert {tuple(r) for r in frames[0]["inserted"]["reach"]} == {
            ("a", "d"), ("b", "d"), ("c", "d"),
        }
        assert {tuple(r) for r in frames[1]["deleted"]["reach"]} == {
            ("a", "b"), ("a", "c"), ("a", "d"),
        }
        # Drained means drained: nothing left.
        assert mgr.drain(sink) == ([], False)

    def test_one_maintenance_pass_for_a_hundred_subscribers(self, manager):
        store, mgr, plans = manager
        plan = plans.get("graphlog", REACH)
        sinks = [FakeSink() for _ in range(100)]
        for sink in sinks:
            mgr.subscribe(plan, {"predicate": "reach"}, sink)
        stats = mgr.stats()
        assert stats["active_subscriptions"] == 100
        assert stats["shared_views"] == 1

        add_edge(store, "c", "d")
        (view,) = mgr._views_by_key.values()
        assert view.maintenance_passes == 1
        for sink in sinks:
            frames, _ = mgr.drain(sink)
            assert len(frames) == 1 and frames[0]["frame"] == "delta"
        assert mgr.stats()["deltas_pushed"] == 100

    def test_view_shared_across_method_param(self, manager):
        store, mgr, plans = manager
        plan = plans.get("graphlog", REACH)
        mgr.subscribe(plan, {"predicate": "reach", "method": "seminaive"}, FakeSink())
        mgr.subscribe(plan, {"predicate": "reach", "method": "columnar"}, FakeSink())
        assert mgr.stats()["shared_views"] == 1

    def test_refcount_teardown_on_last_unsubscribe(self, manager):
        store, mgr, plans = manager
        plan = plans.get("graphlog", REACH)
        sink_a, sink_b = FakeSink(), FakeSink()
        sub_a, _, _ = mgr.subscribe(plan, {}, sink_a)
        sub_b, _, _ = mgr.subscribe(plan, {}, sink_b)
        assert mgr.stats()["shared_views"] == 1
        mgr.unsubscribe(sub_a.id, sink_a)
        assert mgr.stats()["shared_views"] == 1
        mgr.unsubscribe(sub_b.id, sink_b)
        stats = mgr.stats()
        assert stats["shared_views"] == 0
        assert stats["active_subscriptions"] == 0
        # Torn down views are not maintained: a commit costs nothing.
        add_edge(store, "x", "y")
        assert mgr.stats()["shared_views"] == 0

    def test_unsubscribe_checks_id_and_sink(self, manager):
        store, mgr, plans = manager
        sink = FakeSink()
        sub, _, _ = mgr.subscribe(plans.get("graphlog", REACH), {}, sink)
        with pytest.raises(SubscriptionError):
            mgr.unsubscribe(999, sink)
        with pytest.raises(SubscriptionError):
            mgr.unsubscribe(sub.id, FakeSink())  # someone else's sink

    def test_drop_sink_releases_everything(self, manager):
        store, mgr, plans = manager
        sink = FakeSink()
        mgr.subscribe(plans.get("graphlog", REACH), {}, sink)
        mgr.subscribe(plans.get("graphlog", REACH), {"predicate": "reach"}, sink)
        mgr.drop_sink(sink)
        stats = mgr.stats()
        assert stats["active_subscriptions"] == 0
        assert stats["shared_views"] == 0
        mgr.drop_sink(sink)  # idempotent

    def test_rpq_rejected_with_typed_error(self, manager):
        store, mgr, plans = manager
        plan = plans.get("rpq", "link+")
        with pytest.raises(NotMaintainable) as excinfo:
            mgr.subscribe(plan, {}, FakeSink())
        assert excinfo.value.code == "not_maintainable"
        assert "rpq" in excinfo.value.reason
        assert mgr.stats()["shared_views"] == 0

    def test_rpq_fallback_diffs_per_commit(self, manager):
        store, mgr, plans = manager
        plan = plans.get("rpq", "link+")
        sink = FakeSink()
        sub, snapshot, _ = mgr.subscribe(plan, {}, sink, allow_fallback=True)
        assert sub.view.mode == "diff"
        assert sub.view.fallback_reason is not None
        assert snapshot["answers"] == {("a", "b"), ("a", "c"), ("b", "c")}
        v2 = add_edge(store, "c", "d")
        frames, _ = mgr.drain(sink)
        assert frames[0]["version"] == v2
        assert {tuple(r) for r in frames[0]["inserted"]["answers"]} == {
            ("a", "d"), ("b", "d"), ("c", "d"),
        }
        assert sub.view.stats()["fallback_reason"] is not None
        assert mgr.stats()["views"]  # per-view stats surface the reason

    def test_irrelevant_commit_pushes_nothing(self, manager):
        store, mgr, plans = manager
        sink = FakeSink()
        mgr.subscribe(plans.get("graphlog", REACH), {"predicate": "reach"}, sink)
        add_edge(store, "p", "q", label="other")
        frames, _ = mgr.drain(sink)
        assert frames == []
        (view,) = mgr._views_by_key.values()
        # The watermark still advanced: a later real delta is not confused
        # with the skipped commit.
        assert view.version == store.version

    def test_overflow_resync_replaces_queue_with_snapshot(self, manager):
        store, mgr, plans = manager
        sink = FakeSink()
        plan = plans.get("graphlog", REACH)
        sub, _, _ = mgr.subscribe(
            plan, {"predicate": "reach"}, sink, queue_max=2, policy="resync"
        )
        for i in range(4):
            add_edge(store, f"n{i}", f"n{i + 1}")
        frames, disconnect = mgr.drain(sink)
        assert not disconnect
        # Queued deltas were dropped, but never silently: one fresh snapshot
        # carries the complete current answer at the latest version.
        assert [f["frame"] for f in frames] == ["snapshot"]
        assert frames[0]["resync"] is True
        assert frames[0]["version"] == store.version
        rows = {tuple(r) for r in frames[0]["relations"]["reach"]}
        assert ("n0", "n4") in rows
        stats = mgr.stats()
        assert stats["overflows"] >= 1 and stats["resyncs"] >= 1

    def test_overflow_disconnect_closes_the_subscription(self, manager):
        store, mgr, plans = manager
        sink = FakeSink()
        plan = plans.get("graphlog", REACH)
        sub, _, _ = mgr.subscribe(
            plan, {"predicate": "reach"}, sink, queue_max=1, policy="disconnect"
        )
        for i in range(3):
            add_edge(store, f"m{i}", f"m{i + 1}")
        frames, disconnect = mgr.drain(sink)
        assert disconnect
        assert frames[-1]["frame"] == "closed"
        assert frames[-1]["reason"] == "overflow"
        assert mgr.stats()["disconnects"] == 1

    def test_resync_all_marks_every_subscriber(self, manager):
        store, mgr, plans = manager
        sink = FakeSink()
        mgr.subscribe(plans.get("graphlog", REACH), {"predicate": "reach"}, sink)
        mgr.resync_all()
        frames, _ = mgr.drain(sink)
        assert [f["frame"] for f in frames] == ["snapshot"]
        assert mgr.stats()["forced_resyncs"] == 1

    def test_concurrent_commits_never_skip_a_version(self, manager):
        """Deltas arrive exactly once per commit, in version order, even
        when many writer threads race the dispatch hook."""
        store, mgr, plans = manager
        sink = FakeSink()
        sub, snapshot, version = mgr.subscribe(
            plans.get("graphlog", REACH), {"predicate": "reach"}, sink
        )
        base = store.version

        def writer(index):
            for j in range(5):
                add_edge(store, f"w{index}.{j}", f"w{index}.{j + 1}")

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        frames, _ = mgr.drain(sink)
        versions = [f["version"] for f in frames if f["frame"] == "delta"]
        assert versions == list(range(base + 1, base + 21))


class TestQueryServiceSubscribe:
    def test_subscribe_requires_a_streaming_connection(self):
        service = QueryService(store=chain_store())
        try:
            with pytest.raises(SubscriptionError):
                service.execute({"op": "subscribe", "query": REACH})
        finally:
            service.close()

    def test_subscribe_and_stats_block(self):
        service = QueryService(store=chain_store())
        sink = FakeSink()
        try:
            response = service.execute(
                {"op": "subscribe", "query": REACH, "predicate": "reach"},
                sink=sink,
            )
            result = response["result"]
            assert result["mode"] == "maintained"
            assert result["fallback_reason"] is None
            assert result["predicates"] == ["reach"]
            assert {tuple(r) for r in result["snapshot"]["reach"]} == {
                ("a", "b"), ("a", "c"), ("b", "c"),
            }
            stats = service.execute({"op": "stats"})["result"]["subs"]
            assert stats["active_subscriptions"] == 1
            assert stats["shared_views"] == 1
            service.execute(
                {"op": "unsubscribe", "subscription": result["subscription"]},
                sink=sink,
            )
            stats = service.execute({"op": "stats"})["result"]["subs"]
            assert stats["active_subscriptions"] == 0
        finally:
            service.close()

    def test_update_supports_removals(self):
        service = QueryService(store=chain_store())
        try:
            response = service.execute(
                {"op": "update", "edges": [["c", "link", "d"]],
                 "remove_edges": [["a", "link", "b"]]}
            )
            assert response["result"]["added_edges"] == 1
            assert response["result"]["removed_edges"] == 1
            relations = service.execute(
                {"op": "graphlog", "query": REACH, "predicate": "reach"}
            )["result"]["relations"]
            assert {tuple(r) for r in relations["reach"]} == {
                ("b", "c"), ("b", "d"), ("c", "d"),
            }
        finally:
            service.close()


class TestStoreSubscriberDispatch:
    """Edge cases of the store's snapshot-under-lock dispatch."""

    def test_unsubscribe_during_dispatch_still_delivers_this_record(self):
        store = chain_store()
        seen = {"a": 0, "b": 0}

        def cb_b(record):
            seen["b"] += 1

        def cb_a(record):
            seen["a"] += 1
            try:
                store.unsubscribe(cb_b)
            except ValueError:
                pass

        store.subscribe(cb_a)
        store.subscribe(cb_b)
        add_edge(store, "c", "d")
        # The dispatch list was snapshotted before cb_a ran: cb_b still
        # sees the commit that removed it.
        assert seen == {"a": 1, "b": 1}
        add_edge(store, "d", "e")
        assert seen == {"a": 2, "b": 1}

    def test_resubscribe_from_inside_a_callback(self):
        store = chain_store()
        late = []

        def cb_late(record):
            late.append(record.version)

        def cb(record):
            if not any(c is cb_late for c in store._subscribers):
                store.subscribe(cb_late)

        store.subscribe(cb)
        v1 = add_edge(store, "c", "d")
        # Registered mid-dispatch: not called for the triggering commit...
        assert late == []
        v2 = add_edge(store, "d", "e")
        # ...but sees every later one exactly once.
        assert late == [v2]

    def test_subscriber_failures_are_counted_not_fatal(self):
        store = chain_store()
        calls = []

        def bad(record):
            raise RuntimeError("boom")

        def good(record):
            calls.append(record.version)

        store.subscribe(bad)
        store.subscribe(good)
        before = store.stats()["subscriber_failures"]
        version = add_edge(store, "c", "d")
        assert calls == [version]
        assert store.stats()["subscriber_failures"] == before + 1
        store.unsubscribe(bad)
        add_edge(store, "d", "e")
        assert store.stats()["subscriber_failures"] == before + 1


@pytest.fixture
def sub_server():
    srv = ServiceServer(
        store=chain_store(),
        config=ServiceConfig(port=0, workers=4, timeout=10.0),
    ).start_background()
    yield srv
    srv.stop()


class TestEndToEnd:
    def test_snapshot_and_ordered_deltas_across_commits(self, sub_server):
        """The acceptance path: subscribe, mutate across >=3 commits
        (including deletions), and hold the local materialized result equal
        to a fresh query at every version."""
        writer = ServiceClient(port=sub_server.port)
        watcher = ServiceClient(port=sub_server.port)
        try:
            handle = watcher.subscribe(REACH, predicate="reach")
            assert handle.mode == "maintained"
            assert handle.rows["reach"] == {("a", "b"), ("a", "c"), ("b", "c")}

            commits = [
                {"edges": [["c", "link", "d"]]},
                {"edges": [["d", "link", "e"]]},
                {"remove_edges": [["b", "link", "c"]]},
                {"edges": [["b", "link", "e"]], "remove_edges": [["a", "link", "b"]]},
            ]
            for change in commits:
                version = writer.update(**change)
                event = handle.next_event(timeout=10)
                assert event["type"] == "delta"
                assert event["version"] == version
                assert handle.version == version
                fresh = writer.graphlog(REACH, predicate="reach")["reach"]
                assert handle.result("reach") == fresh

            handle.unsubscribe()
            assert handle.closed == "unsubscribed"
            assert watcher.stats()["subs"]["active_subscriptions"] == 0
        finally:
            watcher.close()
            writer.close()

    def test_fanout_to_many_clients(self, sub_server):
        writer = ServiceClient(port=sub_server.port)
        watchers = [ServiceClient(port=sub_server.port) for _ in range(8)]
        try:
            handles = [w.subscribe(REACH, predicate="reach") for w in watchers]
            version = writer.update(edges=[["c", "link", "d"]])
            for handle in handles:
                event = handle.next_event(timeout=10)
                assert event["type"] == "delta" and event["version"] == version
            stats = writer.stats()["subs"]
            assert stats["shared_views"] == 1
            assert stats["active_subscriptions"] == 8
            (view_stats,) = stats["views"].values()
            assert view_stats["maintenance_passes"] == 1
        finally:
            for w in watchers:
                w.close()
            writer.close()

    def test_subscriptions_and_retries_are_mutually_exclusive(self, sub_server):
        with ServiceClient(port=sub_server.port, retries=2) as client:
            with pytest.raises(SubscriptionError, match="mutually exclusive"):
                client.subscribe(REACH)

    def test_not_maintainable_over_the_wire(self, sub_server):
        with ServiceClient(port=sub_server.port) as client:
            with pytest.raises(NotMaintainable):
                client.subscribe("link+", target="rpq")
            handle = client.subscribe("link+", target="rpq", allow_fallback=True)
            assert handle.mode == "diff"
            assert handle.fallback_reason
            stats = client.stats()["subs"]
            (view_stats,) = stats["views"].values()
            assert view_stats["fallback_reason"] == handle.fallback_reason

    def test_disconnect_drops_server_side_state(self, sub_server):
        watcher = ServiceClient(port=sub_server.port)
        writer = ServiceClient(port=sub_server.port)
        try:
            watcher.subscribe(REACH, predicate="reach")
            assert writer.stats()["subs"]["active_subscriptions"] == 1
            watcher.close()
            deadline = 50
            while writer.stats()["subs"]["active_subscriptions"] and deadline:
                import time

                time.sleep(0.05)
                deadline -= 1
            stats = writer.stats()["subs"]
            assert stats["active_subscriptions"] == 0
            assert stats["shared_views"] == 0
        finally:
            writer.close()
            watcher.close()

    def test_callback_delivery(self, sub_server):
        writer = ServiceClient(port=sub_server.port)
        watcher = ServiceClient(port=sub_server.port)
        events = []
        try:
            handle = watcher.subscribe(
                REACH, predicate="reach", on_event=events.append
            )
            version = writer.update(edges=[["c", "link", "d"]])
            while not events:
                assert watcher._pump(5.0)
            assert events[0]["type"] == "delta"
            assert events[0]["version"] == version
            assert handle.version == version
        finally:
            watcher.close()
            writer.close()
