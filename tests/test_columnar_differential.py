"""Randomized native-vs-columnar differentials.

The columnar backend re-implements the entire evaluation pipeline —
encoding, join kernels, semi-naive bookkeeping, decode — so its only
trustworthy correctness argument is agreement with the native walker on
arbitrary programs.  Programs are drawn from seeded generators (failures
replay exactly) and cover recursion (linear and non-linear), stratified
negation, comparisons, arithmetic, repeated variables, and constants.
The RPQ half pins the CSR/bitset product search to the dict-walk search
over random graphs and star/inverse-heavy expressions.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.graphs.multigraph import LabeledMultigraph
from repro.rpq.evaluate import RPQEvaluator

VALUES = ["a", "b", "c", "d", "e"]


def random_edb(rng):
    edb = Database()
    for _ in range(rng.randint(3, 24)):
        edb.add_fact("edge", rng.choice(VALUES), rng.choice(VALUES))
    for _ in range(rng.randint(1, 6)):
        edb.add_fact("mark", rng.choice(VALUES))
    for _ in range(rng.randint(2, 8)):
        edb.add_fact("num", rng.randint(0, 6))
    return edb


def random_program(rng):
    """A safe, stratified program exercising the full feature surface."""
    rules = [
        "tc(X,Y) :- edge(X,Y).",
        rng.choice(
            [
                "tc(X,Y) :- edge(X,Z), tc(Z,Y).",  # linear, delta not first
                "tc(X,Y) :- tc(X,Z), edge(Z,Y).",  # linear, delta first
                "tc(X,Y) :- tc(X,Z), tc(Z,Y).",  # non-linear: old/new split
            ]
        ),
    ]
    if rng.random() < 0.7:
        rules.append("marked_pair(X,Y) :- tc(X,Y), mark(Y).")
    if rng.random() < 0.7:
        rules.append("unmarked(X) :- edge(X,_), not mark(X).")
    if rng.random() < 0.6:
        rules.append("unreached(X) :- mark(X), not tc(X,X).")
    if rng.random() < 0.7:
        rules.append(f"big(X) :- num(X), X > {rng.randint(0, 5)}.")
    if rng.random() < 0.7:
        rules.append("next(X,Y) :- num(X), Y = X + 1.")
    if rng.random() < 0.5:
        rules.append("double(X,Y) :- num(X), Y = X * 2.")
    if rng.random() < 0.5:
        rules.append("self(X) :- edge(X,X).")
    if rng.random() < 0.5:
        rules.append('tagged(X, "t") :- mark(X).')
    return parse_program("\n".join(rules))


@pytest.mark.parametrize("seed", range(25))
def test_random_programs_agree_across_backends(seed):
    rng = random.Random(seed)
    program = random_program(rng)
    edb = random_edb(rng)
    native = Engine(method="seminaive").evaluate(program, edb)
    naive = Engine(method="naive").evaluate(program, edb)
    columnar = Engine(method="columnar").evaluate(program, edb)
    assert native == naive
    assert columnar == native, {
        p: (
            sorted(native.facts(p), key=repr),
            sorted(columnar.facts(p), key=repr),
        )
        for p in sorted(native.predicates)
        if native.facts(p) != columnar.facts(p)
    }


@pytest.mark.parametrize("seed", range(300, 310))
def test_mixed_type_values_agree(seed):
    # Ints, floats, bools, and strings in one column: the catalog must
    # intern by Python equality exactly as native tuple sets hash.
    rng = random.Random(seed)
    pool = ["a", 1, 1.0, True, 0, False, 2.5, "1"]
    edb = Database()
    for _ in range(rng.randint(4, 16)):
        edb.add_fact("edge", rng.choice(pool), rng.choice(pool))
    program = parse_program(
        "tc(X,Y) :- edge(X,Y).\ntc(X,Y) :- edge(X,Z), tc(Z,Y).\nloop(X) :- tc(X,X)."
    )
    native = Engine(method="seminaive").evaluate(program, edb)
    columnar = Engine(method="columnar").evaluate(program, edb)
    assert native == columnar


# --------------------------------------------------------------- RPQ / CSR

RPQ_EXPRESSIONS = [
    "a",
    "a*",
    "a+",
    "-a",
    "(-a)*",
    "a.b",
    "a|b",
    "(a.b)+",
    "(a|-b)*",
    "a.(b|c)*.-a",
    "(-a.-b)+",
    "(a+.b)|(c.-a*)",
]


def random_labeled_graph(rng):
    graph = LabeledMultigraph()
    n = rng.randint(2, 10)
    for i in range(n):
        graph.add_node(f"n{i}")
    for _ in range(rng.randint(0, 24)):
        graph.add_edge(
            f"n{rng.randrange(n)}", f"n{rng.randrange(n)}", rng.choice("abc")
        )
    return graph, n


@pytest.mark.parametrize("seed", range(20))
def test_rpq_csr_matches_dict_walk(seed):
    rng = random.Random(seed)
    graph, n = random_labeled_graph(rng)
    csr = RPQEvaluator(graph, use_csr=True)
    walk = RPQEvaluator(graph, use_csr=False)
    for expression in RPQ_EXPRESSIONS:
        assert csr.pairs(expression) == walk.pairs(expression), expression
        source = f"n{rng.randrange(n)}"
        assert csr.targets(expression, source) == walk.targets(
            expression, source
        ), (expression, source)


def test_rpq_csr_restricted_and_unknown_sources():
    graph = LabeledMultigraph()
    graph.add_edge("x", "y", "a")
    csr = RPQEvaluator(graph, use_csr=True)
    walk = RPQEvaluator(graph, use_csr=False)
    for sources in (["x"], ["y"], ["ghost"], ["x", "ghost"]):
        assert csr.pairs("a*", sources=sources) == walk.pairs(
            "a*", sources=sources
        ), sources
    # A nullable expression answers (v, v) even for unknown sources.
    assert ("ghost", "ghost") in csr.pairs("a*", sources=["ghost"])


def test_rpq_csr_cache_invalidated_by_mutation():
    graph = LabeledMultigraph()
    graph.add_edge("x", "y", "a")
    evaluator = RPQEvaluator(graph, use_csr=True)
    assert evaluator.pairs("a") == {("x", "y")}
    graph.add_edge("y", "z", "a")
    assert evaluator.pairs("a+") == {("x", "y"), ("y", "z"), ("x", "z")}
    edge = next(iter(graph.edges))
    graph.remove_edge(edge)
    reference = RPQEvaluator(graph, use_csr=False)
    assert evaluator.pairs("a+") == reference.pairs("a+")
