"""Replication fault injection: SIGKILL a primary mid-commit, SIGKILL a
replica, assert clean convergence afterwards.

Marked ``faultinject`` (deselected by default; run with ``-m faultinject``):
each test boots real server subprocesses and kills them with SIGKILL, so
they are slower and noisier than the default lane tolerates.
"""

import os
import re
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ReproError
from repro.ham.store import HAMStore
from repro.replication import ReplicaApplier
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceServer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LISTEN = re.compile(r"listening on [\d.]+:(\d+)")

pytestmark = pytest.mark.faultinject


def spawn_serve(*args, port=0):
    """Start ``repro serve`` as a subprocess; returns (process, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port), *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before listening (rc={process.poll()})"
            )
        match = LISTEN.search(line)
        if match:
            return process, int(match.group(1))
    process.kill()
    raise AssertionError("server never reported its port")


def sigkill(process):
    process.kill()
    process.wait(timeout=30)
    process.stdout.close()


def wait_until(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


class TestPrimaryCrash:
    def test_sigkill_primary_mid_commit_replica_converges(self, tmp_path):
        data_dir = str(tmp_path / "primary-data")
        process, port = spawn_serve("--data-dir", data_dir, "--fsync", "always")

        store = HAMStore()
        applier = ReplicaApplier(
            store, "127.0.0.1", port, wait_ms=200,
            reconnect_min=0.05, reconnect_max=0.5, client_timeout=10.0,
        )
        applier.start()
        writer_stop = threading.Event()
        acked = []

        def write_stream():
            try:
                with ServiceClient(port=port, timeout=10) as client:
                    i = 0
                    while not writer_stop.is_set():
                        version = client.update(
                            edges=[[f"c{i}", "crash", f"c{i + 1}"]]
                        )
                        acked.append(version)
                        i += 1
            except ReproError:
                pass  # the kill arrives mid-stream by design

        writer = threading.Thread(target=write_stream, daemon=True)
        try:
            assert applier.wait_ready(15)
            writer.start()
            wait_until(lambda: len(acked) >= 20, 30, "writer never reached 20 commits")
            sigkill(process)  # mid-commit: the writer is still streaming
            writer_stop.set()
            writer.join(timeout=15)

            # Restart the primary on the SAME port (the replica reconnects
            # by address) from the same data dir: crash recovery replays
            # the WAL, then replication serves from the recovered history.
            process, _ = spawn_serve(
                "--data-dir", data_dir, "--fsync", "always", port=port
            )

            with ServiceClient(port=port, timeout=10, retries=5) as client:
                recovered = client.stats()["store"]["version"]
                # fsync=always: every acknowledged commit survived.
                assert recovered >= max(acked), (recovered, max(acked))
                # One more write proves the recovered primary serves the
                # replica's tail from its recovered WAL position.
                final = client.update(edges=[["post", "crash", "recovery"]])
                primary_stats = client.stats()["store"]

            wait_until(
                lambda: store.version == final, 30,
                f"replica at {store.version}, primary recovered to {final}",
            )
            assert store.graph.node_count() == primary_stats["nodes"]
            assert store.graph.edge_count() == primary_stats["edges"]
            status = applier.status()
            assert status["lag_versions"] == 0
        finally:
            writer_stop.set()
            applier.stop()
            if process.poll() is None:
                sigkill(process)


class TestEqualVersionDivergence:
    """The tentpole bug, end to end with real crashes.

    A primary running ``--fsync interval`` can acknowledge commits whose
    WAL records are lost in a crash (never synced).  After recovery it
    re-commits *different* data back onto the same version numbers — and a
    replica that already applied the lost versions sees an equal-or-higher
    primary version with no reset.  Two appliers ride through the same
    crash: the legacy one (epoch check disabled) silently diverges at an
    equal version; the default one detects the epoch rotation recovery
    performed and re-bootstraps onto the rewritten history.
    """

    @staticmethod
    def _cut_wal_at_version(data_dir, version):
        """Chop the durable WAL mid-record at the first record holding
        *version*, simulating an unsynced tail lost to the crash (SIGKILL
        alone cannot lose it: appends are flushed to the page cache, which
        survives process death).  The cut is deliberately torn — five bytes
        into the record header — so recovery takes its truncation path and
        rotates the epoch."""
        from repro.persist import wal as wal_mod

        segments = wal_mod.list_segments(os.path.join(data_dir, "wal"))
        cut_index = None
        for index, (_first, path) in enumerate(segments):
            records, _good, corruption = wal_mod.scan_segment(path)
            assert corruption is None, corruption
            for offset, payload in records:
                if payload["version"] >= version:
                    with open(path, "r+b") as handle:
                        handle.truncate(offset + 5)
                    cut_index = index
                    break
            if cut_index is not None:
                break
        assert cut_index is not None, f"version {version} not found in the WAL"
        for _first, path in segments[cut_index + 1:]:
            os.unlink(path)

    def test_rewritten_history_rebootstraps_checked_replica_only(self, tmp_path):
        data_dir = str(tmp_path / "primary-data")
        # A long fsync interval guarantees no record is synced before the
        # kill, so cutting the tail afterwards is a faithful re-enactment.
        process, port = spawn_serve(
            "--data-dir", data_dir, "--fsync", "interval",
            "--fsync-interval", "60",
        )

        def applier_for(check_epoch):
            return ReplicaApplier(
                HAMStore(), "127.0.0.1", port, wait_ms=200,
                reconnect_min=0.05, reconnect_max=0.5, client_timeout=10.0,
                check_epoch=check_epoch,
            )

        checked = applier_for(True)
        legacy = applier_for(False)
        writer_stop = threading.Event()
        acked = []

        def write_stream():
            try:
                with ServiceClient(port=port, timeout=10) as client:
                    i = 0
                    while not writer_stop.is_set():
                        acked.append(
                            client.update(edges=[[f"c{i}", "crash", f"c{i + 1}"]])
                        )
                        i += 1
                        time.sleep(0.005)
            except ReproError:
                pass  # the kill arrives mid-stream by design

        writer = threading.Thread(target=write_stream, daemon=True)
        staging = None
        try:
            checked.start()
            legacy.start()
            assert checked.wait_ready(15) and legacy.wait_ready(15)
            writer.start()
            wait_until(
                lambda: min(checked.store.version, legacy.store.version) >= 10,
                30, "replicas never applied 10 commits",
            )
            sigkill(process)
            writer_stop.set()
            writer.join(timeout=15)
            # Both appliers are cut off; their applied versions are final.
            wait_until(
                lambda: not checked.status()["connected"]
                and not legacy.status()["connected"],
                15, "appliers never noticed the primary died",
            )
            applied = legacy.store.version
            assert applied >= 10

            # Lose the unsynced tail from version `applied` on: recovery
            # comes back BELOW what the legacy replica already applied.
            self._cut_wal_at_version(data_dir, applied)

            # Stage the rewrite on a TEMPORARY port so the replicas (still
            # retrying the original address) cannot see the primary while
            # its version is below theirs — that would answer `reset` and
            # hide the bug this test pins down.  Re-commit DIFFERENT data
            # past both replicas' positions (the appliers poll
            # independently, so the checked one may be a few versions ahead
            # of or behind the legacy one at kill time).
            target = max(applied, checked.store.version) + 1
            staging, staging_port = spawn_serve(
                "--data-dir", data_dir, "--fsync", "interval",
                "--fsync-interval", "60", port=0,
            )
            with ServiceClient(port=staging_port, timeout=10, retries=5) as client:
                recovered = client.stats()["store"]["version"]
                assert recovered == applied - 1, (recovered, applied)
                rewritten = recovered
                for i in range(target - recovered):
                    rewritten = client.update(
                        edges=[[f"d{i}", "divergent", f"d{i + 1}"]]
                    )
            assert rewritten == target
            sigkill(staging)
            staging = None

            # Back on the original port: the replicas reconnect and tail
            # from `applied`, and the primary answers records with NO reset
            # (they are not ahead).  Version arithmetic sees nothing wrong.
            process, _ = spawn_serve(
                "--data-dir", data_dir, "--fsync", "interval",
                "--fsync-interval", "60", port=port,
            )
            with ServiceClient(port=port, timeout=10, retries=5) as client:
                primary_stats = client.stats()["store"]

            # The legacy applier applies the rewritten records straight
            # onto its stale state: equal version, different data, zero
            # errors — the silent divergence the epoch stamp exists to kill.
            wait_until(
                lambda: legacy.store.version == rewritten, 30,
                f"legacy replica at {legacy.store.version}, primary at {rewritten}",
            )
            assert legacy.status()["lag_versions"] == 0
            assert legacy.status()["epoch_rebootstraps"] == 0
            assert legacy.status()["bootstraps"] == 1
            # Divergence, concretely: the primary's rewrite starts with the
            # d0->d1 edge (version `applied`), which the legacy replica
            # never saw — it tailed from `applied` and got only the record
            # after it — while the replica still holds the crashed line's
            # c-edge for version `applied`, which the recovered primary
            # lost.  Same version number, different graphs, no error.
            assert not legacy.store.graph.has_edge("d0", "d1", "divergent"), (
                "legacy replica matches the rewritten primary; the "
                "divergence this test documents no longer reproduces"
            )
            assert legacy.store.graph.has_edge(
                f"c{applied - 1}", f"c{applied}", "crash"
            )

            # The checked applier sees the rotated epoch on its first tail
            # response and re-bootstraps onto the rewritten history.
            wait_until(
                lambda: checked.store.version == rewritten
                and checked.store.graph.edge_count() == primary_stats["edges"],
                30,
                f"checked replica at {checked.store.version} never converged",
            )
            status = checked.status()
            assert status["epoch_rebootstraps"] >= 1
            assert status["bootstraps"] >= 2
            assert checked.store.graph.node_count() == primary_stats["nodes"]
            assert checked.store.graph.has_edge("d0", "d1", "divergent")
            assert not checked.store.graph.has_edge(
                f"c{applied - 1}", f"c{applied}", "crash"
            )
        finally:
            writer_stop.set()
            checked.stop()
            legacy.stop()
            for proc in (process, staging):
                if proc is not None and proc.poll() is None:
                    sigkill(proc)


class TestReplicaCrash:
    def test_sigkill_replica_fresh_one_rebootstraps(self):
        primary = ServiceServer(config=ServiceConfig(port=0)).start_background()
        replica_proc = None
        try:
            with ServiceClient(port=primary.port) as writer:
                for i in range(10):
                    writer.update(edges=[[f"a{i}", "e", f"a{i + 1}"]])

            address = f"127.0.0.1:{primary.port}"
            replica_proc, replica_port = spawn_serve(
                "--replica-of", address, "--repl-wait-ms", "200"
            )

            def applied_version(port):
                with ServiceClient(port=port, timeout=10) as client:
                    return client.stats()["replication"]["applied_version"]

            wait_until(lambda: applied_version(replica_port) == 10, 30,
                       "first replica never caught up")
            sigkill(replica_proc)
            replica_proc = None

            # The primary keeps committing while the replica is down.
            with ServiceClient(port=primary.port) as writer:
                for i in range(10, 15):
                    writer.update(edges=[[f"a{i}", "e", f"a{i + 1}"]])

            # A fresh replica bootstraps cleanly and reaches the new head.
            replica_proc, replica_port = spawn_serve(
                "--replica-of", address, "--repl-wait-ms", "200"
            )
            wait_until(lambda: applied_version(replica_port) == 15, 30,
                       "fresh replica never converged")
            with ServiceClient(port=replica_port) as reader:
                status = reader.stats()["replication"]
                assert status["lag_versions"] == 0
                assert status["bootstraps"] == 1
                result = reader.datalog(
                    "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y).",
                    min_version=15,
                )
                assert ("a0", "a15") in result["tc"]
        finally:
            if replica_proc is not None and replica_proc.poll() is None:
                sigkill(replica_proc)
            primary.stop()
