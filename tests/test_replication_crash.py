"""Replication fault injection: SIGKILL a primary mid-commit, SIGKILL a
replica, assert clean convergence afterwards.

Marked ``faultinject`` (deselected by default; run with ``-m faultinject``):
each test boots real server subprocesses and kills them with SIGKILL, so
they are slower and noisier than the default lane tolerates.
"""

import os
import re
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ReproError
from repro.ham.store import HAMStore
from repro.replication import ReplicaApplier
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceServer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LISTEN = re.compile(r"listening on [\d.]+:(\d+)")

pytestmark = pytest.mark.faultinject


def spawn_serve(*args, port=0):
    """Start ``repro serve`` as a subprocess; returns (process, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port), *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before listening (rc={process.poll()})"
            )
        match = LISTEN.search(line)
        if match:
            return process, int(match.group(1))
    process.kill()
    raise AssertionError("server never reported its port")


def sigkill(process):
    process.kill()
    process.wait(timeout=30)
    process.stdout.close()


def wait_until(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


class TestPrimaryCrash:
    def test_sigkill_primary_mid_commit_replica_converges(self, tmp_path):
        data_dir = str(tmp_path / "primary-data")
        process, port = spawn_serve("--data-dir", data_dir, "--fsync", "always")

        store = HAMStore()
        applier = ReplicaApplier(
            store, "127.0.0.1", port, wait_ms=200,
            reconnect_min=0.05, reconnect_max=0.5, client_timeout=10.0,
        )
        applier.start()
        writer_stop = threading.Event()
        acked = []

        def write_stream():
            try:
                with ServiceClient(port=port, timeout=10) as client:
                    i = 0
                    while not writer_stop.is_set():
                        version = client.update(
                            edges=[[f"c{i}", "crash", f"c{i + 1}"]]
                        )
                        acked.append(version)
                        i += 1
            except ReproError:
                pass  # the kill arrives mid-stream by design

        writer = threading.Thread(target=write_stream, daemon=True)
        try:
            assert applier.wait_ready(15)
            writer.start()
            wait_until(lambda: len(acked) >= 20, 30, "writer never reached 20 commits")
            sigkill(process)  # mid-commit: the writer is still streaming
            writer_stop.set()
            writer.join(timeout=15)

            # Restart the primary on the SAME port (the replica reconnects
            # by address) from the same data dir: crash recovery replays
            # the WAL, then replication serves from the recovered history.
            process, _ = spawn_serve(
                "--data-dir", data_dir, "--fsync", "always", port=port
            )

            with ServiceClient(port=port, timeout=10, retries=5) as client:
                recovered = client.stats()["store"]["version"]
                # fsync=always: every acknowledged commit survived.
                assert recovered >= max(acked), (recovered, max(acked))
                # One more write proves the recovered primary serves the
                # replica's tail from its recovered WAL position.
                final = client.update(edges=[["post", "crash", "recovery"]])
                primary_stats = client.stats()["store"]

            wait_until(
                lambda: store.version == final, 30,
                f"replica at {store.version}, primary recovered to {final}",
            )
            assert store.graph.node_count() == primary_stats["nodes"]
            assert store.graph.edge_count() == primary_stats["edges"]
            status = applier.status()
            assert status["lag_versions"] == 0
        finally:
            writer_stop.set()
            applier.stop()
            if process.poll() is None:
                sigkill(process)


class TestReplicaCrash:
    def test_sigkill_replica_fresh_one_rebootstraps(self):
        primary = ServiceServer(config=ServiceConfig(port=0)).start_background()
        replica_proc = None
        try:
            with ServiceClient(port=primary.port) as writer:
                for i in range(10):
                    writer.update(edges=[[f"a{i}", "e", f"a{i + 1}"]])

            address = f"127.0.0.1:{primary.port}"
            replica_proc, replica_port = spawn_serve(
                "--replica-of", address, "--repl-wait-ms", "200"
            )

            def applied_version(port):
                with ServiceClient(port=port, timeout=10) as client:
                    return client.stats()["replication"]["applied_version"]

            wait_until(lambda: applied_version(replica_port) == 10, 30,
                       "first replica never caught up")
            sigkill(replica_proc)
            replica_proc = None

            # The primary keeps committing while the replica is down.
            with ServiceClient(port=primary.port) as writer:
                for i in range(10, 15):
                    writer.update(edges=[[f"a{i}", "e", f"a{i + 1}"]])

            # A fresh replica bootstraps cleanly and reaches the new head.
            replica_proc, replica_port = spawn_serve(
                "--replica-of", address, "--repl-wait-ms", "200"
            )
            wait_until(lambda: applied_version(replica_port) == 15, 30,
                       "fresh replica never converged")
            with ServiceClient(port=replica_port) as reader:
                status = reader.stats()["replication"]
                assert status["lag_versions"] == 0
                assert status["bootstraps"] == 1
                result = reader.datalog(
                    "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y).",
                    min_version=15,
                )
                assert ("a0", "a15") in result["tc"]
        finally:
            if replica_proc is not None and replica_proc.poll() is None:
                sigkill(replica_proc)
            primary.stop()
