"""Tests for the magic-sets transformation (goal-directed evaluation)."""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.magic import (
    adornment_of,
    magic_answers,
    magic_query,
    magic_rewrite,
)
from repro.datalog.parser import parse_atom, parse_program
from repro.errors import TranslationError

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)


def two_component_db(n=20):
    db = Database()
    db.add_facts("e", [(f"a{i}", f"a{i+1}") for i in range(5)])
    db.add_facts("e", [(f"b{i}", f"b{i+1}") for i in range(n)])
    return db


class TestAdornment:
    def test_patterns(self):
        assert adornment_of(parse_atom("tc(a, Y)")) == "bf"
        assert adornment_of(parse_atom("tc(X, b)")) == "fb"
        assert adornment_of(parse_atom("tc(a, b)")) == "bb"
        assert adornment_of(parse_atom("tc(X, Y)")) == "ff"


class TestRewrite:
    def test_rule_shape(self):
        rewritten = magic_rewrite(TC, parse_atom("tc(a, Y)"))
        text = str(rewritten.program)
        assert "magic#tc@bf(X)" in text
        assert "tc@bf(X, Y)" in text
        # The magic rule propagating the binding through the recursion.
        assert "magic#tc@bf(Z) :- magic#tc@bf(X), e(X, Z)." in text

    def test_goal_must_be_idb(self):
        with pytest.raises(TranslationError):
            magic_rewrite(TC, parse_atom("e(a, Y)"))

    def test_negation_rejected(self):
        program = parse_program("p(X) :- e(X, _), not q(X).")
        with pytest.raises(TranslationError):
            magic_rewrite(program, parse_atom("p(a)"))

    def test_builtins_rejected(self):
        program = parse_program("p(X) :- e(X, Y), Y < 3.")
        with pytest.raises(TranslationError):
            magic_rewrite(program, parse_atom("p(a)"))


class TestAnswers:
    @pytest.mark.parametrize(
        "goal",
        ["tc(a0, Y)", "tc(X, a3)", "tc(a0, a4)", "tc(X, Y)", "tc(a0, b3)"],
    )
    def test_matches_full_evaluation(self, goal):
        goal = parse_atom(goal)
        db = two_component_db()
        expected = Engine().query(TC, db, goal)
        assert magic_answers(TC, db, goal) == expected

    def test_explores_less(self):
        db = two_component_db(n=100)
        goal = parse_atom("tc(a0, Y)")
        _answers, magic_stats = magic_query(TC, db, goal)
        full = Engine()
        full.query(TC, db, goal)
        assert magic_stats.facts_derived < full.stats.facts_derived / 5

    def test_same_generation_bound_goal(self):
        program = parse_program(
            """
            sg(X, X) :- person(X).
            sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
            """
        )
        db = Database()
        db.add_facts("person", [(p,) for p in "abcdef"])
        db.add_facts("parent", [("c", "a"), ("d", "a"), ("e", "b"), ("f", "b")])
        goal = parse_atom("sg(c, Y)")
        expected = Engine().query(program, db, goal)
        assert magic_answers(program, db, goal) == expected
        assert expected == {("c",), ("d",)}

    def test_multi_idb_chain(self):
        program = parse_program(
            """
            hop(X, Y) :- e(X, Y).
            tc(X, Y) :- hop(X, Y).
            tc(X, Y) :- hop(X, Z), tc(Z, Y).
            """
        )
        db = two_component_db()
        goal = parse_atom("tc(b0, Y)")
        expected = Engine().query(program, db, goal)
        assert magic_answers(program, db, goal) == expected

    def test_all_free_goal_still_correct(self):
        db = two_component_db(5)
        goal = parse_atom("tc(X, Y)")
        assert magic_answers(TC, db, goal) == Engine().query(TC, db, goal)

    def test_empty_answer(self):
        db = two_component_db(5)
        goal = parse_atom("tc(a4, a0)")
        assert magic_answers(TC, db, goal) == set()

    def test_constants_inside_rules(self):
        program = parse_program(
            """
            special(X) :- e(hub, X).
            far(Y) :- special(X), e(X, Y).
            """
        )
        db = Database()
        db.add_facts("e", [("hub", "m"), ("m", "t"), ("x", "y")])
        goal = parse_atom("far(Y)")
        assert magic_answers(program, db, goal) == Engine().query(program, db, goal)
