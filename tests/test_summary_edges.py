"""Tests for path-summarization edges in GraphLog queries (Section 4)."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.core.translate import translate, translate_extended
from repro.datalog.database import Database
from repro.datasets.tasks import figure11_database, random_project
from repro.errors import ParseError, QueryGraphError, TranslationError
from repro.figures.fig11 import earlier_start, earlier_start_oracle, query as fig11_query


def weighted_db():
    db = Database()
    db.add_facts("hop", [("a", "b", 3), ("b", "c", 2), ("a", "c", 10), ("c", "d", 1)])
    return db


def summary_query(semiring="longest"):
    q = GraphicalQuery()
    g = q.define("X", "Y", "best", extra=["V"])
    g.summarize("X", "Y", "hop", semiring, "V")
    return q


class TestBuilderAndValidation:
    def test_summary_edge_recorded(self):
        q = summary_query()
        graph = q.graphs[0]
        assert len(graph.summaries) == 1
        assert graph.body_predicates() == {"hop"}

    def test_single_term_nodes_required(self):
        g = QueryGraph()
        with pytest.raises(QueryGraphError):
            g.summarize(("X", "Y"), "Z", "hop", "longest", "V")

    def test_summary_alone_satisfies_pattern_requirement(self):
        summary_query().validate()

    def test_plain_translate_rejects_summaries(self):
        with pytest.raises(TranslationError):
            translate(summary_query())


class TestEvaluation:
    @pytest.mark.parametrize(
        "semiring,expected_ac",
        # widest a->c: the direct 10-edge beats min(3, 2) via b.
        [("longest", 10), ("shortest", 5), ("widest", 10)],
    )
    def test_semantics(self, semiring, expected_ac):
        answers = GraphLogEngine().answers(summary_query(semiring), weighted_db(), "best")
        by_pair = {(a, b): v for a, b, v in answers}
        assert by_pair[("a", "c")] == expected_ac

    def test_shared_summary_predicate(self):
        q = GraphicalQuery()
        g1 = q.define("X", "Y", "p1", extra=["V"])
        g1.summarize("X", "Y", "hop", "longest", "V")
        g2 = q.define("X", "Y", "p2", extra=["V"])
        g2.summarize("X", "Y", "hop", "longest", "V")
        program = translate_extended(q)
        assert len(program.summary_rules) == 1  # deduplicated

    def test_summary_over_defined_relation(self):
        # The weight relation is itself a query-graph result (fig11 shape).
        answers = GraphLogEngine().answers(
            fig11_query(), figure11_database(), "earlier-start"
        )
        assert ("design", "ship", 23) in answers

    def test_matches_oracle_on_random_projects(self):
        for seed in (1, 7):
            db = random_project(seed, n_tasks=25, layers=5)
            via_graphlog = earlier_start(db)
            oracle = earlier_start_oracle(db)
            assert via_graphlog == oracle

    def test_summary_composes_with_comparison(self):
        q = parse_graphical_query(
            """
            define (T1) -[moved(D)]-> (T2) {
                (T1) -[affects]-> (T2);
                (T2) -[duration]-> (D);
            }
            define (T1) -[long-dep]-> (T2) {
                (T1) -[moved @ longest E]-> (T2);
                (E) -[>]-> (TEN);
                is-ten(TEN);
            }
            """
        )
        db = figure11_database()
        db.add_fact("is-ten", 10)
        answers = GraphLogEngine().answers(q, db, "long-dep")
        oracle = earlier_start_oracle(db)
        expected = {(a, b) for (a, b), e in oracle.items() if e > 10}
        assert answers == expected and answers


class TestDSL:
    def test_parse_summary_edge(self):
        q = parse_graphical_query(
            """
            define (X) -[best(V)]-> (Y) {
                (X) -[hop @ shortest V]-> (Y);
            }
            """
        )
        graph = q.graphs[0]
        assert len(graph.summaries) == 1
        assert graph.summaries[0].weight_predicate == "hop"

    def test_bad_semiring_name_fails_at_translate(self):
        q = parse_graphical_query(
            """
            define (X) -[best(V)]-> (Y) {
                (X) -[hop @ fanciest V]-> (Y);
            }
            """
        )
        with pytest.raises(KeyError):
            translate_extended(q)

    def test_left_of_at_must_be_bare_predicate(self):
        with pytest.raises(ParseError):
            parse_graphical_query(
                """
                define (X) -[best(V)]-> (Y) {
                    (X) -[hop+ @ shortest V]-> (Y);
                }
                """
            )

    def test_value_must_be_variable(self):
        with pytest.raises(ParseError):
            parse_graphical_query(
                """
                define (X) -[best(V)]-> (Y) {
                    (X) -[hop @ shortest 3]-> (Y);
                }
                """
            )

    def test_roundtrip_via_render(self):
        from repro.visual.ascii_art import render_graphical_query

        q = summary_query("shortest")
        text = render_graphical_query(q)
        q2 = parse_graphical_query(text)
        assert q2.graphs[0].summaries[0].weight_predicate == "hop"
        first = GraphLogEngine().answers(q, weighted_db(), "best")
        second = GraphLogEngine().answers(q2, weighted_db(), "best")
        assert first == second
