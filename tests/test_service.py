"""Tests for the concurrent query service (repro.service)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets.flights import figure1_database
from repro.errors import (
    ProtocolError,
    QueryTimeout,
    ResultTooLarge,
    ServiceError,
)
from repro.graphs.bridge import graph_from_database
from repro.ham.store import HAMStore
from repro.service.cache import ResultCache, result_key
from repro.service.client import ServiceClient
from repro.service.metrics import MetricsRegistry, percentile
from repro.service.prepared import PreparedQueryCache, fingerprint, normalize
from repro.service.server import QueryService, ServiceConfig, ServiceServer
from repro.service import protocol

REACH_QUERY = """
define (C1) -[reach]-> (C2) {
    (C1) <-[from]- (F); (F) -[to]-> (C2);
}
define (C1) -[connected]-> (C2) {
    (C1) -[reach+]-> (C2);
}
"""

CONN_PROGRAM = "conn(X, Y) :- from(F, X), to(F, Y)."


def flights_store():
    store = HAMStore()
    store.load_graph(graph_from_database(figure1_database()))
    return store


@pytest.fixture(scope="module")
def server():
    """One background server over the Figure 1 flights data, module-wide.

    Tests that mutate the store append fresh edges, which only ever grows
    the reachability relations other tests assert membership in.
    """
    srv = ServiceServer(
        store=flights_store(),
        config=ServiceConfig(port=0, workers=4, timeout=10.0),
    ).start_background()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


class TestPrepared:
    def test_normalize_collapses_whitespace_and_comments(self):
        a = "conn(X, Y) :- from(F, X), to(F, Y)."
        b = "conn(X, Y) :-\n    from(F, X),  % the flight's origin\n    to(F, Y)."
        assert normalize(a) == normalize(b)
        assert fingerprint("datalog", a) == fingerprint("datalog", b)
        assert fingerprint("datalog", a) != fingerprint("graphlog", a)

    def test_plan_cache_reuses_compiled_plans(self):
        cache = PreparedQueryCache(capacity=8)
        first = cache.get("datalog", CONN_PROGRAM)
        again = cache.get("datalog", "conn(X, Y) :-   from(F, X), to(F, Y).")
        assert again is first
        assert cache.stats() == {
            "size": 1, "capacity": 8, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_plan_cache_evicts_lru(self):
        cache = PreparedQueryCache(capacity=2)
        cache.get("rpq", "a")
        cache.get("rpq", "b")
        cache.get("rpq", "a")  # refresh a
        cache.get("rpq", "c")  # evicts b
        assert cache.stats()["evictions"] == 1
        cache.get("rpq", "a")
        assert cache.stats()["hits"] == 2

    def test_unsafe_datalog_rejected_at_prepare_time(self):
        from repro.errors import SafetyError

        with pytest.raises(SafetyError):
            PreparedQueryCache().get("datalog", "bad(X, Y) :- from(F, X).")

    def test_graphlog_plan_records_head_and_idb(self):
        plan = PreparedQueryCache().get("graphlog", REACH_QUERY)
        assert plan.head_predicate == "connected"
        assert set(plan.idb_predicates) == {"reach", "connected"}


class TestResultCache:
    def test_version_stamp_prevents_stale_hits(self):
        cache = ResultCache(capacity=4)
        key = result_key("fp", {})
        cache.put(key, "answer@1", version=1)
        assert cache.get(key, 1) == "answer@1"
        assert cache.get(key, 2) is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_params_are_part_of_the_key(self):
        cache = ResultCache(capacity=4)
        cache.put(result_key("fp", {"source": "a"}), "from-a", version=1)
        assert cache.get(result_key("fp", {"source": "b"}), 1) is None
        assert cache.get(result_key("fp", {"source": "a"}), 1) == "from-a"

    def test_param_normalization_is_type_tagged(self):
        # str(v) normalization used to collide all three, so a query with
        # limit="1" could be served the answer computed for limit=1.
        keys = {
            result_key("fp", {"limit": 1}),
            result_key("fp", {"limit": "1"}),
            result_key("fp", {"limit": True}),
        }
        assert len(keys) == 3
        assert result_key("fp", {"limit": 1}) == result_key("fp", {"limit": 1})
        assert result_key("fp", {"xs": [1, "1"]}) != result_key("fp", {"xs": ["1", 1]})

    def test_attach_drops_footprintless_entries_on_commit(self):
        store = HAMStore()
        cache = ResultCache(capacity=8)
        detach = cache.attach(store)
        cache.put(result_key("fp", {}), "old", version=store.version)
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1
        detach()

    def test_commit_missing_the_footprint_restamps_the_entry(self):
        store = HAMStore()
        cache = ResultCache(capacity=8)
        detach = cache.attach(store)
        key = result_key("fp", {})
        cache.put(key, "answer", store.version, footprint=frozenset({"from", "to"}))
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "unrelated")
        assert cache.get(key, store.version) == "answer"
        assert cache.stats()["delta_reuse_hits"] == 1
        with session.transaction() as txn:
            txn.add_edge("a", "c", "from")
        assert cache.get(key, store.version) is None
        assert len(cache) == 0
        detach()

    def test_lagging_entry_is_not_restamped(self):
        cache = ResultCache(capacity=8)
        key = result_key("fp", {})
        cache.put(key, "stale", version=1, footprint=frozenset({"from"}))
        # The entry was stamped at version 1 but the commit lands version 3:
        # some intervening commit was never checked against it, so even a
        # disjoint delta cannot prove it fresh.
        cache.apply_commit(3, frozenset({"other"}))
        assert cache.get(key, 3) is None

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", ()), 1, version=1)
        cache.put(("b", ()), 2, version=1)
        cache.get(("a", ()), 1)
        cache.put(("c", ()), 3, version=1)
        assert cache.get(("b", ()), 1) is None
        assert cache.get(("a", ()), 1) == 1
        assert cache.stats()["evictions"] == 1


class SlowQueryService(QueryService):
    """A service whose requests can be stalled via a ``slow`` field."""

    def execute(self, message, **kwargs):
        delay = message.get("slow")
        if delay:
            time.sleep(delay)
        return super().execute(message, **kwargs)


@pytest.fixture
def slow_server():
    srv = ServiceServer(
        service=SlowQueryService(store=flights_store()),
        config=ServiceConfig(port=0, workers=1, timeout=10.0),
    ).start_background()
    yield srv
    srv.stop()


class TestMetrics:
    def test_percentile(self):
        assert percentile([], 0.5) is None
        assert percentile([7.0], 0.95) == 7.0
        samples = list(range(1, 101))
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.95) == 95

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.incr("requests.rpq")
        registry.observe_latency("rpq", 0.002)
        registry.request_started()
        snap = registry.snapshot()
        assert snap["counters"]["requests.rpq"] == 1
        assert snap["in_flight"] == 1
        assert snap["latency"]["rpq"]["count"] == 1
        assert snap["latency"]["rpq"]["p50_ms"] == pytest.approx(2.0)
        registry.request_finished()
        assert registry.in_flight == 0

    def test_in_flight_gauge_clamps_at_zero(self):
        registry = MetricsRegistry()
        registry.request_finished()
        assert registry.in_flight == 0
        assert registry.counter("gauge.in_flight_clamped") == 1

    def test_phase_breakdown_in_snapshot(self):
        registry = MetricsRegistry()
        registry.observe_phase("evaluate", 0.004)
        registry.observe_phase("evaluate", 0.006)
        phases = registry.snapshot()["phases"]
        assert phases["evaluate"]["count"] == 2
        assert phases["evaluate"]["total_ms"] == pytest.approx(10.0)
        assert phases["evaluate"]["p95_ms"] == pytest.approx(6.0)


class TestProtocol:
    def test_decode_rejects_bad_requests(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request(b"not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode_request(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            protocol.decode_request(b'{"op": "no-such-op"}\n')

    def test_error_roundtrip(self):
        response = protocol.error_response(3, QueryTimeout("too slow"))
        with pytest.raises(QueryTimeout):
            protocol.raise_for_error(response)
        response = protocol.error_response(4, ResultTooLarge("too big"))
        with pytest.raises(ResultTooLarge):
            protocol.raise_for_error(response)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("timeout", "5"),
            ("timeout", -1),
            ("timeout", -0.5),
            ("timeout", True),
            ("timeout", float("inf")),
            ("max_rows", "100"),
            ("max_rows", -1),
            ("max_rows", True),
            ("max_rows", 2.5),
            ("max_bytes", "big"),
            ("max_bytes", -10),
            ("max_bytes", False),
        ],
    )
    def test_decode_rejects_bad_budgets(self, field, value):
        """Bad budget fields must fail at decode time as protocol errors —
        they used to flow into asyncio.wait_for and crash as internal."""
        message = {"op": "ping", field: value}
        with pytest.raises(ProtocolError, match=field):
            protocol.decode_request(protocol.encode(message))

    def test_decode_accepts_valid_budgets(self):
        message = {"op": "ping", "timeout": 0, "max_rows": 10, "max_bytes": 1024}
        decoded = protocol.decode_request(protocol.encode(message))
        assert decoded["timeout"] == 0  # timeout=0 means "expire immediately"


class TestQueryServiceCore:
    """The synchronous core, driven without a network in between."""

    def test_graphlog_result_cache_hit_and_invalidation(self):
        service = QueryService(store=flights_store())
        first = service.execute({"op": "graphlog", "query": REACH_QUERY})
        assert first["cache"] == "miss"
        again = service.execute({"op": "graphlog", "query": REACH_QUERY})
        assert again["cache"] == "hit"
        assert again["result"] == first["result"]

        # A commit whose delta only touches "reach-test" (and the node
        # domain) misses the REACH plan's footprint entirely: the cached
        # answer is re-stamped to the new version and stays servable.
        session = service.store.session()
        with session.transaction() as txn:
            txn.add_edge("washington", "paris", "reach-test")
        after = service.execute({"op": "graphlog", "query": REACH_QUERY})
        assert after["cache"] == "hit"
        assert after["version"] == first["version"] + 1
        assert after["result"] == first["result"]
        assert service.results.stats()["delta_reuse_hits"] >= 1

        # A commit on an edge label the plan actually reads drops the entry.
        with session.transaction() as txn:
            txn.add_edge("f99", "washington", "from")
        final = service.execute({"op": "graphlog", "query": REACH_QUERY})
        assert final["cache"] == "miss"

    def test_update_changes_answers_not_stale(self):
        service = QueryService(store=flights_store())
        before = service.execute({"op": "rpq", "query": "hop+"})
        assert before["result"]["relations"]["answers"] == []
        service.execute({"op": "update", "edges": [["toronto", "hop", "ottawa"]]})
        after = service.execute({"op": "rpq", "query": "hop+"})
        assert after["result"]["relations"]["answers"] == [["toronto", "ottawa"]]

    def test_row_budget(self):
        service = QueryService(store=flights_store())
        with pytest.raises(ResultTooLarge):
            service.execute({"op": "graphlog", "query": REACH_QUERY, "max_rows": 2})

    def test_byte_budget_checked_on_cache_hit_too(self):
        service = QueryService(store=flights_store())
        service.execute({"op": "datalog", "query": CONN_PROGRAM})
        with pytest.raises(ResultTooLarge):
            service.execute({"op": "datalog", "query": CONN_PROGRAM, "max_bytes": 10})

    def test_unknown_predicate_param(self):
        service = QueryService(store=flights_store())
        with pytest.raises(ProtocolError):
            service.execute(
                {"op": "graphlog", "query": REACH_QUERY, "predicate": "nope"}
            )


class TestServerOverTheWire:
    def test_ping_and_stats(self, client):
        assert client.ping() is True
        stats = client.stats()
        assert stats["store"]["edges"] >= 32
        assert "plan_cache" in stats and "result_cache" in stats

    def test_graphlog_roundtrip(self, client):
        relations = client.graphlog(REACH_QUERY, predicate="reach")
        assert ("toronto", "ottawa") in relations["reach"]

    def test_datalog_roundtrip(self, client):
        relations = client.datalog(CONN_PROGRAM)
        assert ("montreal", "new-york") in relations["conn"]

    def test_rpq_roundtrip(self, client):
        pairs = client.rpq("-from . to")
        assert ("toronto", "ottawa") in pairs
        targets = client.rpq("(-from . to)+", source="toronto")
        assert ("new-york",) in targets

    def test_parse_error_surfaces_as_service_error(self, client):
        with pytest.raises(ServiceError, match="ParseError"):
            client.datalog("this is not datalog ((")

    def test_timeout_error_path(self, client):
        with pytest.raises(QueryTimeout):
            client.call("graphlog", query=REACH_QUERY, timeout=0)

    def test_row_limit_error_path(self, client):
        with pytest.raises(ResultTooLarge):
            client.graphlog(REACH_QUERY, max_rows=1)

    def test_result_cache_hits_reported_in_stats(self, server, client):
        query = CONN_PROGRAM + "  % stats-marker"
        client.datalog(query)
        response = client.call("datalog", query=query)
        assert response["cache"] == "hit"
        stats = client.stats()
        assert stats["result_cache"]["hits"] > 0
        assert stats["metrics"]["counters"]["result_cache.hits"] > 0

    def test_commit_between_identical_queries_forces_reevaluation(self, client):
        label = "fresh-leg"
        regex = f"{label}+"
        assert client.rpq(regex) == set()
        assert client.call("rpq", query=regex)["cache"] == "hit"
        version = client.update(edges=[["ottawa", label, "montreal"]])
        response = client.call("rpq", query=regex)
        assert response["cache"] == "miss"
        assert response["version"] == version
        assert ("ottawa", "montreal") in {
            tuple(r) for r in response["result"]["relations"]["answers"]
        }

    def test_concurrent_clients(self, server):
        """Four clients hammer one server concurrently; all answers agree."""
        errors = []
        results = []

        def worker(i):
            try:
                with ServiceClient(port=server.port) as c:
                    for _ in range(5):
                        relations = c.datalog(CONN_PROGRAM)
                        results.append(relations["conn"])
                        pairs = c.rpq("-from . to")
                        assert relations["conn"] == pairs
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(results) == 20
        assert all(r == results[0] for r in results)
        with ServiceClient(port=server.port) as c:
            stats = c.stats()
        assert stats["metrics"]["counters"]["requests.datalog"] >= 20

    def test_cli_call_roundtrip(self, server, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "q.dl"
        program.write_text(CONN_PROGRAM)
        port = str(server.port)
        assert main(["call", "datalog", str(program), "--port", port]) == 0
        out = capsys.readouterr().out
        assert "conn" in out and "version=" in out
        assert main(["call", "rpq", "-from . to", "--port", port]) == 0
        assert "answers" in capsys.readouterr().out
        assert main(["call", "stats", "--port", port, "--json"]) == 0
        assert "result_cache" in capsys.readouterr().out

    def test_malformed_line_gets_protocol_error(self, server):
        import json
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol_error"

    def test_bad_budget_rejected_over_the_wire(self, client):
        with pytest.raises(ProtocolError, match="timeout"):
            client.call("ping", timeout="soon")
        with pytest.raises(ProtocolError, match="max_rows"):
            client.call("datalog", query=CONN_PROGRAM, max_rows=-5)
        # The connection survives a protocol_error (no desync: the error
        # response was read and matched normally).
        assert client.ping() is True

    def test_explain_over_the_wire(self, client):
        result = client.explain(REACH_QUERY)
        assert result["count"] > 0
        assert "engine.stratum" in result["text"]
        assert "prepare" in result["phases"]
        trace = result["trace"]
        assert trace["name"] == "explain"
        names = [child["name"] for child in trace["children"]]
        assert names == ["prepare", "evaluate", "encode"]
        stats = client.stats()
        assert stats["traces"]["recorded"] >= 1
        assert "explain.evaluate" in stats["metrics"]["phases"]

    def test_profile_over_the_wire(self, client):
        result = client.profile(CONN_PROGRAM, target="datalog")
        assert "text" not in result
        assert result["relations"] == {"conn": result["count"]}

    def test_queue_wait_phase_measured(self, client):
        client.ping()
        stats = client.stats()
        assert stats["metrics"]["phases"]["queue_wait"]["count"] >= 1

    def test_cli_explain_against_server(self, server, tmp_path, capsys):
        from repro.cli import main

        query = tmp_path / "reach.gl"
        query.write_text(REACH_QUERY)
        code = main(
            ["explain", str(query), "--host", "127.0.0.1", "--port", str(server.port)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine.stratum" in out and "phases:" in out
        code = main(
            ["call", "explain", str(query), "--port", str(server.port)]
        )
        assert code == 0
        assert "engine.stratum" in capsys.readouterr().out


class TestClientDesync:
    """A client-side socket timeout must poison the connection: the stale
    response it leaves buffered would otherwise be read by (and attributed
    to) the *next* call."""

    def test_timeout_poisons_the_connection(self, slow_server):
        client = ServiceClient(port=slow_server.port, timeout=0.3)
        try:
            with pytest.raises(ServiceError, match="timed out"):
                client.call("ping", slow=1.5)
            # The follow-up call fails fast instead of reading the stale
            # ping response that the server is still going to send.
            with pytest.raises(ServiceError, match="poisoned"):
                client.ping()
        finally:
            client.close()
        # The server itself is fine; a fresh connection works.
        time.sleep(1.5)
        with ServiceClient(port=slow_server.port, timeout=5.0) as fresh:
            assert fresh.ping() is True

    def test_id_mismatch_detected_before_error_decoding(self):
        """A stale *error* response must not be raised as the current
        call's failure: the id check runs before raise_for_error."""
        import socket as socket_module

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        responses = [
            protocol.encode(protocol.error_response(99, QueryTimeout("stale"))),
        ]

        def serve_one():
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.sendall(responses[0])
            conn.close()

        worker = threading.Thread(target=serve_one)
        worker.start()
        try:
            client = ServiceClient(port=port, timeout=5.0)
            # Without the ordering fix this would raise QueryTimeout — the
            # stale response's error — misattributed to this request.
            with pytest.raises(ServiceError, match="does not match"):
                client.ping()
            with pytest.raises(ServiceError, match="poisoned"):
                client.ping()
        finally:
            worker.join()
            listener.close()


class TestShutdown:
    def test_stop_with_queued_requests_keeps_gauge_consistent(self):
        """Queued work is cancelled at shutdown; the in-flight gauge never
        goes negative and the running request still drains cleanly."""
        import socket as socket_module

        srv = ServiceServer(
            service=SlowQueryService(store=flights_store()),
            config=ServiceConfig(port=0, workers=1, timeout=10.0),
        ).start_background()
        socks = []
        try:
            # First request occupies the single worker; the rest queue.
            for i in range(3):
                sock = socket_module.create_connection(
                    ("127.0.0.1", srv.port), timeout=5
                )
                sock.sendall(protocol.encode({"id": i, "op": "ping", "slow": 0.8}))
                socks.append(sock)
            time.sleep(0.2)  # let the first request start executing
        finally:
            srv.stop()
            for sock in socks:
                sock.close()
        # The stalled request finishes on the daemon worker thread after
        # stop(); wait for it so its request_finished() has landed.
        time.sleep(1.2)
        metrics = srv.service.metrics
        assert metrics.in_flight >= 0
        snapshot = metrics.snapshot()
        assert snapshot["in_flight"] >= 0


class TestDurableService:
    def durable_config(self, data_dir, **overrides):
        params = dict(
            port=0, workers=2, timeout=10.0, data_dir=str(data_dir), fsync="always"
        )
        params.update(overrides)
        return ServiceConfig(**params)

    def test_checkpoint_without_data_dir_is_protocol_error(self):
        service = QueryService(store=flights_store())
        try:
            with pytest.raises(ProtocolError, match="--data-dir"):
                service.execute({"op": "checkpoint"})
        finally:
            service.close()

    def test_checkpoint_over_the_wire(self, tmp_path):
        srv = ServiceServer(config=self.durable_config(tmp_path)).start_background()
        try:
            with ServiceClient(port=srv.port) as c:
                c.update(edges=[["a", "hop", "b"]])
                info = c.checkpoint()
                assert info["version"] == 1
                assert "checkpoint-" in info["path"]
                stats = c.stats()
                assert stats["store"]["durability"]["checkpoint"]["last_version"] == 1
                assert stats["metrics"]["counters"]["checkpoints.requested"] == 1
        finally:
            srv.stop()

    def test_service_recovers_data_across_restarts(self, tmp_path):
        srv = ServiceServer(config=self.durable_config(tmp_path)).start_background()
        try:
            with ServiceClient(port=srv.port) as c:
                assert c.update(edges=[["a", "link", "b"], ["b", "link", "c"]]) == 1
                assert c.update(edges=[["c", "link", "d"]]) == 2
        finally:
            srv.stop()

        srv2 = ServiceServer(config=self.durable_config(tmp_path)).start_background()
        try:
            with ServiceClient(port=srv2.port) as c:
                # Recovered store serves queries: reachability spans all hops.
                rows = c.graphlog(
                    "define (X) -[reach]-> (Y) { (X) -[link+]-> (Y); }",
                    predicate="reach",
                )
                assert ("a", "d") in rows["reach"]
                # And keeps versioning where it left off.
                assert c.update(edges=[["d", "link", "e"]]) == 3
        finally:
            srv2.stop()

    def test_views_and_cache_rebuilt_against_recovered_store(self, tmp_path):
        config = self.durable_config(tmp_path)
        service = QueryService(config=config)
        try:
            service.execute({"op": "update", "edges": [["a", "link", "b"]]})
        finally:
            service.close()

        service2 = QueryService(config=self.durable_config(tmp_path))
        try:
            query = "define (X) -[reach]-> (Y) { (X) -[link+]-> (Y); }"
            first = service2.execute({"op": "graphlog", "query": query})
            assert ["a", "b"] in first["result"]["relations"]["reach"]
            # Cache is alive on the recovered store: second call hits...
            second = service2.execute({"op": "graphlog", "query": query})
            assert second["cache"] == "hit"
            # ...and commits on the recovered store still invalidate it.
            service2.execute({"op": "update", "edges": [["b", "link", "c"]]})
            third = service2.execute({"op": "graphlog", "query": query})
            assert third["cache"] == "miss"
            assert ["a", "c"] in third["result"]["relations"]["reach"]
        finally:
            service2.close()

    def test_close_is_idempotent(self, tmp_path):
        service = QueryService(config=self.durable_config(tmp_path))
        service.close()
        service.close()


class TestTelemetry:
    """Prometheus endpoint, request IDs, slow-query log over the wire."""

    _SAMPLE_LINE = __import__("re").compile(
        r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN|\+Inf|-Inf))$"
    )

    def _traced_server(self, **overrides):
        params = dict(
            port=0, workers=2, timeout=10.0, metrics_port=0, slow_ms=0.0
        )
        params.update(overrides)
        return ServiceServer(
            store=flights_store(), config=ServiceConfig(**params)
        ).start_background()

    def test_scrape_is_valid_exposition(self):
        import urllib.request

        srv = self._traced_server()
        try:
            assert srv.metrics_port  # ephemeral port was bound and published
            with ServiceClient(port=srv.port) as c:
                c.update(edges=[["zrh", "hop", "muc"]])
                c.datalog(CONN_PROGRAM, predicate="conn")
                c.datalog(CONN_PROGRAM, predicate="conn")  # cache hit
            body = (
                urllib.request.urlopen(
                    f"http://127.0.0.1:{srv.metrics_port}/metrics", timeout=5
                )
                .read()
                .decode()
            )
            for line in body.rstrip("\n").splitlines():
                assert self._SAMPLE_LINE.match(line), f"bad line: {line!r}"
            # The acceptance quartet: latency histogram, cache counters,
            # WAL-less fsync series absent, per-predicate fact gauges.
            assert 'repro_request_seconds_bucket{le="+Inf",op="datalog"}' in body
            assert "repro_result_cache_hits_total" in body
            assert 'repro_store_facts{predicate="from"}' in body
            assert 'repro_requests_total{op="update"} 1' in body
            assert 'repro_store_churn_rows_total{predicate="hop"} 1' in body
        finally:
            srv.stop()

    def test_healthz_ok_over_http(self):
        import json as _json
        import urllib.request

        srv = self._traced_server()
        try:
            resp = urllib.request.urlopen(
                f"http://127.0.0.1:{srv.metrics_port}/healthz", timeout=5
            )
            assert resp.status == 200
            doc = _json.loads(resp.read())
            assert doc["status"] == "ok"
            assert "in_flight" in doc
        finally:
            srv.stop()

    def test_wal_fsync_histogram_exported(self, tmp_path):
        srv = ServiceServer(
            config=ServiceConfig(
                port=0,
                workers=2,
                timeout=10.0,
                data_dir=str(tmp_path),
                fsync="always",
                metrics_port=0,
            )
        ).start_background()
        try:
            with ServiceClient(port=srv.port) as c:
                c.update(edges=[["a", "link", "b"]])
            body = srv.service.prometheus_text()
            assert "repro_wal_fsync_seconds_count 1" in body
            assert 'repro_phase_seconds_bucket{le="+Inf",phase="wal.fsync"} 1' in body
        finally:
            srv.stop()

    def test_health_degraded_after_durability_close(self, tmp_path):
        service = QueryService(
            config=ServiceConfig(port=0, data_dir=str(tmp_path), fsync="always")
        )
        try:
            service.execute({"op": "update", "edges": [["a", "link", "b"]]})
            assert service.health()["status"] == "ok"
            service.durability.close()
            doc = service.health()
            assert doc["status"] == "degraded"
            assert doc["durability"]["closed"] is True
        finally:
            service.close()

    def test_slowlog_wire_op_carries_trace_and_request_id(self):
        import io
        import json as _json
        import logging

        from repro.obs.logs import JsonLogFormatter, RequestIdFilter

        # Capture the server's slow-request WARNINGs as JSON, the way the
        # CLI handler would, so the request_id stamped in the worker
        # thread is observable.
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLogFormatter())
        handler.addFilter(RequestIdFilter())
        server_logger = logging.getLogger("repro.service.server")
        server_logger.addHandler(handler)
        srv = self._traced_server()
        try:
            with ServiceClient(port=srv.port) as c:
                c.datalog(CONN_PROGRAM, predicate="conn")
                doc = c.slowlog()
            entries = doc["entries"]
            assert doc["stats"]["enabled"] is True
            assert entries, "slow_ms=0.0 must record every request"
            entry = entries[0]
            assert entry["op"] == "datalog"
            assert entry["threshold_ms"] == 0.0
            assert entry["elapsed_ms"] >= 0.0
            # The cache-miss evaluation captured its span tree.
            traced = [e for e in entries if e.get("trace")]
            assert traced
            assert traced[0]["trace"]["name"] == "datalog"
            names = [child["name"] for child in traced[0]["trace"]["children"]]
            assert "evaluate" in names
            # Every recorded entry has a request id, and the JSON log line
            # for the same request carries the identical id.
            logged = [
                _json.loads(line) for line in stream.getvalue().splitlines()
            ]
            logged_ids = {rec["request_id"] for rec in logged}
            assert "-" not in logged_ids
            for e in entries:
                assert e["request_id"] in logged_ids
        finally:
            server_logger.removeHandler(handler)
            srv.stop()

    def test_request_ids_distinct_across_executor_threads(self):
        srv = self._traced_server(workers=4)
        try:
            errors = []

            def hammer():
                try:
                    with ServiceClient(port=srv.port) as c:
                        for _ in range(3):
                            c.ping()
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            entries = srv.service.slowlog.snapshot()
            ids = [e["request_id"] for e in entries]
            assert len(ids) >= 12
            assert len(set(ids)) == len(ids), "request ids must be unique"
        finally:
            srv.stop()

    def test_slowlog_op_validates_limit(self, client):
        with pytest.raises(ProtocolError):
            client.call("slowlog", limit=-1)
        with pytest.raises(ProtocolError):
            client.call("slowlog", limit="ten")
        # Disabled by default on the shared server: empty but well-formed.
        doc = client.slowlog()
        assert doc["entries"] == []
        assert doc["stats"]["enabled"] is False

    def test_snapshot_has_p99(self):
        registry = MetricsRegistry()
        registry.observe_latency("rpq", 0.002)
        registry.observe_phase("evaluate", 0.004)
        snapshot = registry.snapshot()
        assert snapshot["latency"]["rpq"]["p99_ms"] == pytest.approx(2.0)
        assert snapshot["phases"]["evaluate"]["p99_ms"] == pytest.approx(4.0)

    def test_store_predicate_stats_track_churn(self):
        store = HAMStore()
        session = store.session()
        with session.transaction() as txn:
            txn.add_edge("a", "b", "link")
            txn.add_edge("b", "c", "link")
        with session.transaction() as txn:
            txn.add_edge("c", "d", "rel")
        stats = store.predicate_stats()
        assert stats["link"]["facts"] == 2
        assert stats["link"]["churn_rows"] == 2
        assert stats["link"]["churn_commits"] == 1
        assert stats["rel"]["churn_commits"] == 1
        top = store.predicate_stats(top=1)
        assert list(top) == ["link"]
        # And stats() carries the ranked summary for `repro top`.
        assert store.stats()["predicates"]["link"]["facts"] == 2
