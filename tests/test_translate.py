"""Tests for the logical translation function λ (Definition 2.4)."""


from repro.core.pre import closure, inverse, neg, optional, rel, seq, star
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.core.translate import PredicateNamer, translate, translate_query_graph
from repro.datalog.ast import Literal
from repro.datalog.classify import is_stratified_linear
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.stratify import is_stratified
from repro.core.engine import prepare_database


def run_query(graph_or_query, facts):
    """Translate, prepare, evaluate; return the result database."""
    program = translate(graph_or_query)
    db = Database.from_facts(facts)
    return evaluate(program, prepare_database(db))


class TestBareLiterals:
    def test_plain_edge(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.distinguished("X", "Y", "out")
        rules = translate_query_graph(g)
        assert str(rules[0]) == "out(X, Y) :- e(X, Y)."
        assert len(rules) == 1

    def test_edge_with_label_args(self):
        g = QueryGraph()
        g.edge("X", "Y", rel("flight", "T"))
        g.distinguished("X", "Y", "out", extra=["T"])
        rules = translate_query_graph(g)
        assert str(rules[0]) == "out(X, Y, T) :- flight(X, Y, T)."

    def test_negated_edge(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.edge("X", "Y", "~f")
        g.distinguished("X", "Y", "out")
        rules = translate_query_graph(g)
        assert "not f(X, Y)" in str(rules[0])

    def test_multi_variable_nodes(self):
        g = QueryGraph()
        g.edge(("X1", "X2"), ("Y1", "Y2"), "r")
        g.distinguished(("X1", "X2"), ("Y1", "Y2"), "out")
        rules = translate_query_graph(g)
        assert str(rules[0]) == "out(X1, X2, Y1, Y2) :- r(X1, X2, Y1, Y2)."

    def test_annotations_appended(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.annotate("X", "person")
        g.annotate("Y", "evil", positive=False)
        g.distinguished("X", "Y", "out")
        body = str(translate_query_graph(g)[0])
        assert "person(X)" in body and "not evil(Y)" in body


class TestClosure:
    def test_figure3_exact(self):
        g = QueryGraph()
        g.edge("P1", "P3", "descendant+")
        g.edge("P2", "P3", "~descendant+")
        g.annotate("P2", "person")
        g.distinguished("P1", "P3", "not-desc-of", extra=["P2"])
        rules = translate_query_graph(g)
        main = str(rules[0])
        assert main == (
            "not-desc-of(P1, P3, P2) :- descendant-tc(P1, P3), "
            "not descendant-tc(P2, P3), person(P2)."
        )
        # Rules (2) and (3) of Definition 2.4.
        tc_rules = [str(r) for r in rules[1:]]
        assert len(tc_rules) == 2
        assert any(":- descendant(" in r and "descendant-tc" not in r.split(":-")[1] or True for r in tc_rules)

    def test_shared_closure_compiled_once(self):
        g = QueryGraph()
        g.edge("X", "Y", "e+")
        g.edge("Y", "Z", "e+")
        g.distinguished("X", "Z", "out")
        rules = translate_query_graph(g)
        # one main + exactly two TC rules (not four)
        assert len(rules) == 3

    def test_closure_with_label_variable(self):
        # Definition 2.4 case 3: the label value stays constant along the path.
        result = run_query(
            _single_edge_query(closure(rel("ride", "L")), extra=["L"]),
            {"ride": [("a", "b", "red"), ("b", "c", "red"), ("c", "d", "blue")]},
        )
        answers = result.facts("out")
        assert ("a", "c", "red") in answers
        assert ("a", "d", "red") not in answers  # colour changes at c

    def test_closure_with_constant_arg(self):
        result = run_query(
            _single_edge_query(closure(rel("flight", "cp"))),
            {"flight": [("a", "b", "cp"), ("b", "c", "cp"), ("c", "d", "aa")]},
        )
        assert ("a", "c") in result.facts("out")
        assert ("a", "d") not in result.facts("out")

    def test_multiwidth_closure(self):
        g = QueryGraph()
        g.edge(("X1", "X2"), ("Y1", "Y2"), closure(rel("sg")))
        g.distinguished(("X1", "X2"), ("Y1", "Y2"), "out")
        result = evaluate(
            translate(GraphicalQuery([g])),
            prepare_database(
                Database.from_facts({"sg": [("a", "b", "c", "d"), ("c", "d", "e", "f")]})
            ),
        )
        assert ("a", "b", "e", "f") in result.facts("out")


def _single_edge_query(pre, extra=()):
    g = QueryGraph()
    g.edge("X", "Y", pre)
    g.distinguished("X", "Y", "out", extra=extra)
    return GraphicalQuery([g])


class TestCompositeExpressions:
    def test_composition(self):
        result = run_query(
            _single_edge_query(seq("a", "b")),
            {"a": [("x", "y")], "b": [("y", "z")]},
        )
        assert result.facts("out") == {("x", "z")}

    def test_alternation(self):
        result = run_query(
            _single_edge_query(rel("a") | rel("b")),
            {"a": [("x", "y")], "b": [("u", "v")]},
        )
        assert result.facts("out") == {("x", "y"), ("u", "v")}

    def test_inversion(self):
        result = run_query(
            _single_edge_query(inverse("a")),
            {"a": [("x", "y")]},
        )
        assert result.facts("out") == {("y", "x")}

    def test_star_includes_zero_steps(self):
        result = run_query(
            _single_edge_query(star("a")),
            {"a": [("x", "y")]},
        )
        assert ("x", "x") in result.facts("out")
        assert ("y", "y") in result.facts("out")
        assert ("x", "y") in result.facts("out")

    def test_optional(self):
        result = run_query(
            _single_edge_query(optional("a")),
            {"a": [("x", "y"), ("y", "z")]},
        )
        answers = result.facts("out")
        assert ("x", "y") in answers and ("x", "x") in answers
        assert ("x", "z") not in answers  # optional is at most one step

    def test_negated_composite(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.edge("X", "Y", neg(seq("a", "b")))
        g.distinguished("X", "Y", "out")
        result = evaluate(
            translate(GraphicalQuery([g])),
            prepare_database(
                Database.from_facts(
                    {"e": [("x", "z"), ("x", "w")], "a": [("x", "y")], "b": [("y", "z")]}
                )
            ),
        )
        assert result.facts("out") == {("x", "w")}

    def test_star_closure_composed(self):
        # (father | mother)* friend : me, my ancestors' friends.
        result = run_query(
            _single_edge_query(seq(star(rel("father") | rel("mother", "_")), "friend")),
            {
                "father": [("f", "me")],
                "mother": [("m", "me", "h1")],
                "friend": [("f", "alice"), ("me", "carol")],
            },
        )
        mine = {t for t in result.facts("out") if t[0] == "me"}
        assert mine == {("me", "carol")}
        assert ("f", "alice") in result.facts("out")

    def test_inverted_star_composition(self):
        # -(father)* walks *down* the tree from an ancestor.
        result = run_query(
            _single_edge_query(seq(inverse("father"), rel("friend"))),
            {"father": [("dad", "kid")], "friend": [("dad", "ann")]},
        )
        assert result.facts("out") == {("kid", "ann")}


class TestEqualityEdges:
    def test_equality_edge(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.edge("X", "Y", "=")
        g.distinguished("X", "Y", "out")
        result = evaluate(
            translate(GraphicalQuery([g])),
            prepare_database(Database.from_facts({"e": [("a", "a"), ("a", "b")]})),
        )
        assert result.facts("out") == {("a", "a")}

    def test_inequality_edge(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.edge("X", "Y", "!=")
        g.distinguished("X", "Y", "out")
        result = evaluate(
            translate(GraphicalQuery([g])),
            prepare_database(Database.from_facts({"e": [("a", "a"), ("a", "b")]})),
        )
        assert result.facts("out") == {("a", "b")}

    def test_comparison_edge(self):
        g = QueryGraph()
        g.edge("X", "T1", "starts")
        g.edge("Y", "T2", "starts")
        g.edge("T1", "T2", "<")
        g.distinguished("X", "Y", "earlier")
        result = evaluate(
            translate(GraphicalQuery([g])),
            prepare_database(Database.from_facts({"starts": [("a", 1), ("b", 2)]})),
        )
        assert result.facts("earlier") == {("a", "b")}

    def test_negated_comparison_edge(self):
        g = QueryGraph()
        g.edge("X", "T1", "starts")
        g.edge("Y", "T2", "starts")
        g.edge("T1", "T2", "~<")
        g.distinguished("X", "Y", "not-earlier")
        result = evaluate(
            translate(GraphicalQuery([g])),
            prepare_database(Database.from_facts({"starts": [("a", 1), ("b", 2)]})),
        )
        assert ("b", "a") in result.facts("not-earlier")
        assert ("a", "b") not in result.facts("not-earlier")


class TestProgramShape:
    def test_output_is_stratified_linear(self):
        q = GraphicalQuery()
        g = q.define("P1", "P3", "ndo", extra=["P2"])
        g.edge("P1", "P3", "descendant+")
        g.edge("P2", "P3", "~descendant+")
        g.annotate("P2", "person")
        g2 = q.define("X", "Y", "friends-of-nd")
        g2.edge("X", "Z", rel("ndo", "Q"))
        g2.edge("Z", "Y", star("friend"))
        g2.annotate("Q", "person")
        program = translate(q)
        assert is_stratified(program)
        assert is_stratified_linear(program)

    def test_namer_avoids_user_predicates(self):
        namer = PredicateNamer(reserved={"e-tc"})
        g = QueryGraph()
        g.edge("X", "Y", "e+")
        g.distinguished("X", "Y", "out")
        rules = translate_query_graph(g, namer)
        names = {r.head.predicate for r in rules}
        assert "e-tc" not in names
        assert any(name.startswith("e-tc-") for name in names)

    def test_namer_width_distinct(self):
        namer = PredicateNamer()
        n1, _ = namer.name_for("key", "aux", width=1)
        n2, _ = namer.name_for("key", "aux", width=2)
        assert n1 != n2
        again, fresh = namer.name_for("key", "aux", width=1)
        assert again == n1 and not fresh

    def test_constants_in_node_labels(self):
        g = QueryGraph()
        g.edge("P", "toronto", "residence")
        g.distinguished("P", "P", "torontonian")
        result = evaluate(
            translate(GraphicalQuery([g])),
            prepare_database(
                Database.from_facts({"residence": [("ann", "toronto"), ("bob", "ottawa")]})
            ),
        )
        assert result.facts("torontonian") == {("ann", "ann")}
