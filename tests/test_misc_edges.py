"""Edge-case tests across modules: error paths, reprs, odd inputs."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine, prepare_database
from repro.core.query_graph import GraphicalQuery
from repro.datalog.database import Database
from repro.datalog.engine import Engine, EvaluationStats
from repro.datalog.lexer import TokenStream, tokenize
from repro.datalog.parser import parse_program
from repro.errors import ParseError, ReproError
from repro.shell import ShellSession


class TestErrors:
    def test_hierarchy(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, ReproError) or obj is ReproError

    def test_parse_error_location(self):
        error = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3

    def test_parse_error_without_location(self):
        assert str(ParseError("oops")) == "oops"


class TestLexerStream:
    def test_expect_error_message(self):
        stream = TokenStream(tokenize("p q"))
        stream.next()
        with pytest.raises(ParseError) as info:
            stream.expect("punct", "(")
        assert "'('" in str(info.value)

    def test_peek_past_end_is_eof(self):
        stream = TokenStream(tokenize("p"))
        assert stream.peek(10).kind == "eof"

    def test_next_at_eof_stays(self):
        stream = TokenStream(tokenize(""))
        assert stream.next().kind == "eof"
        assert stream.next().kind == "eof"


class TestEngineMisc:
    def test_stats_repr(self):
        stats = EvaluationStats()
        assert "iterations=0" in repr(stats)

    def test_engine_reuse_resets_stats(self):
        engine = Engine()
        program = parse_program("p(X) :- e(X).")
        db = Database.from_facts({"e": [("a",)]})
        engine.evaluate(program, db)
        first = engine.stats.facts_derived
        engine.evaluate(program, db)
        assert engine.stats.facts_derived == first

    def test_prepare_database_empty(self):
        prepared = prepare_database(Database())
        assert prepared.count("node") == 0

    def test_multiwidth_negated_closure(self):
        # fig2-style negation over a 2-wide closure.
        query = GraphicalQuery()
        graph = query.define(("X1", "X2"), ("Y1", "Y2"), "not-sg")
        graph.edge(("X1", "X2"), ("Y1", "Y2"), "base")
        graph.edge(("X1", "X2"), ("Y1", "Y2"), "~up+")
        db = Database.from_facts(
            {
                "base": [("a", "b", "c", "d"), ("a", "b", "x", "y")],
                "up": [("a", "b", "c", "d")],
            }
        )
        answers = GraphLogEngine().answers(query, db, "not-sg")
        assert answers == {("a", "b", "x", "y")}

    def test_engine_query_on_aux_predicate(self):
        query = parse_graphical_query(
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }"
        )
        db = Database.from_facts({"parent": [("a", "b"), ("b", "c")]})
        result = GraphLogEngine().run(query, db)
        # Auxiliary closure relation is visible in the result.
        assert ("a", "c") in result.facts("parent-tc")


class TestShellMisc:
    def test_rpq_second_token_not_a_node(self):
        session = ShellSession()
        session.execute("link(a, b).")
        out = session.execute("rpq link+ zzz")
        # 'zzz' is not a node: treated as part of the regex -> parse failure
        # or empty pairs, but never a crash.
        assert isinstance(out, str)

    def test_define_with_summary_edge(self):
        session = ShellSession()
        for line in [
            "hop(a, b, 3).",
            "hop(b, c, 2).",
            "define (X) -[best(V)]-> (Y) { (X) -[hop @ shortest V]-> (Y); }",
        ]:
            session.execute(line)
        out = session.execute("run best")
        assert "best (3 tuples)" in out

    def test_reverse_summary_edge_rejected(self):
        session = ShellSession()
        out = session.execute(
            "define (X) -[best(V)]-> (Y) { (Y) <-[hop @ shortest V]- (X); }"
        )
        assert out.startswith("error")


class TestDSLMisc:
    def test_duplicate_head_predicates_allowed(self):
        query = parse_graphical_query(
            """
            define (X) -[p]-> (Y) { (X) -[a]-> (Y); }
            define (X) -[p]-> (Y) { (X) -[b]-> (Y); }
            """
        )
        db = Database.from_facts({"a": [("1", "2")], "b": [("3", "4")]})
        answers = GraphLogEngine().answers(query, db, "p")
        assert answers == {("1", "2"), ("3", "4")}

    def test_multiterm_node_in_dsl_with_closure(self):
        query = parse_graphical_query(
            """
            define (X, Y) -[sg]-> (U, V) {
                (X, Y) -[up+]-> (U, V);
            }
            """
        )
        db = Database.from_facts({"up": [("a", "b", "c", "d"), ("c", "d", "e", "f")]})
        answers = GraphLogEngine().answers(query, db, "sg")
        assert ("a", "b", "e", "f") in answers


class TestGraphSchemaMisc:
    def test_zero_label_wide_predicate(self):
        from repro.graphs.bridge import GraphSchema, graph_from_database

        schema = GraphSchema().declare("r", 1, 2, 0)
        db = Database.from_facts({"r": [("a", "b", "c")]})
        graph = graph_from_database(db, schema)
        assert graph.has_node(("b", "c"))

    def test_negative_arity_rejected(self):
        from repro.graphs.bridge import PredicateShape

        with pytest.raises(ValueError):
            PredicateShape(-1, 1)
