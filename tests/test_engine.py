"""Tests for bottom-up Datalog evaluation (naive and semi-naive)."""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import Engine, evaluate, match_atom, query
from repro.datalog.parser import parse_atom, parse_program
from repro.errors import EvaluationError, SafetyError, StratificationError

TC_PROGRAM = """
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
"""


def chain_db(n):
    db = Database()
    db.add_facts("e", [(f"n{i}", f"n{i+1}") for i in range(n)])
    return db


class TestBasics:
    def test_transitive_closure(self):
        result = evaluate(parse_program(TC_PROGRAM), chain_db(3))
        assert len(result.facts("tc")) == 6

    def test_facts_in_program(self):
        program = parse_program("e(a, b). e(b, c). " + TC_PROGRAM)
        result = evaluate(program, Database())
        assert ("a", "c") in result.facts("tc")

    def test_input_not_mutated(self):
        db = chain_db(3)
        evaluate(parse_program(TC_PROGRAM), db)
        assert "tc" not in db

    def test_cyclic_graph_terminates(self):
        db = Database()
        db.add_facts("e", [("a", "b"), ("b", "c"), ("c", "a")])
        result = evaluate(parse_program(TC_PROGRAM), db)
        assert len(result.facts("tc")) == 9

    def test_same_generation(self):
        program = parse_program(
            """
            sg(X, X) :- person(X).
            sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
            """
        )
        db = Database()
        db.add_facts("person", [(p,) for p in "abcdef"])
        db.add_facts("parent", [("c", "a"), ("d", "a"), ("e", "b"), ("f", "b")])
        result = evaluate(program, db)
        assert ("c", "d") in result.facts("sg")
        assert ("c", "e") not in result.facts("sg")

    def test_nonlinear_rules(self):
        program = parse_program(
            """
            path(X, Y) :- e(X, Y).
            path(X, Y) :- path(X, Z), path(Z, Y).
            """
        )
        result = evaluate(program, chain_db(5))
        assert len(result.facts("path")) == 15

    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """
        )
        db = Database()
        db.add_fact("zero", 0)
        db.add_facts("succ", [(i, i + 1) for i in range(6)])
        result = evaluate(program, db)
        assert {x for (x,) in result.facts("even")} == {0, 2, 4, 6}
        assert {x for (x,) in result.facts("odd")} == {1, 3, 5}

    def test_empty_program(self):
        from repro.datalog.ast import Program

        result = evaluate(Program([]), chain_db(2))
        assert result.count("e") == 2


class TestNegation:
    def test_stratified_negation(self):
        program = parse_program(
            TC_PROGRAM
            + """
            node(X) :- e(X, Y).
            node(Y) :- e(X, Y).
            unreachable(X, Y) :- node(X), node(Y), not tc(X, Y).
            """
        )
        result = evaluate(program, chain_db(2))
        assert ("n2", "n0") in result.facts("unreachable")
        assert ("n0", "n2") not in result.facts("unreachable")

    def test_negation_over_empty_relation(self):
        program = parse_program("p(X) :- e(X, _), not missing(X).")
        result = evaluate(program, chain_db(1))
        assert len(result.facts("p")) == 1

    def test_unstratified_rejected(self):
        with pytest.raises(StratificationError):
            evaluate(parse_program("p(X) :- e(X, X), not p(X)."), Database())

    def test_negation_with_anonymous(self):
        program = parse_program(
            """
            has_out(X) :- e(X, _).
            sink(X) :- e(_, X), not e(X, _).
            """
        )
        result = evaluate(program, chain_db(2))
        assert result.facts("sink") == {("n2",)}


class TestBuiltins:
    def test_comparison(self):
        program = parse_program("small(X) :- num(X), X < 3.")
        db = Database()
        db.add_facts("num", [(i,) for i in range(6)])
        result = evaluate(program, db)
        assert {x for (x,) in result.facts("small")} == {0, 1, 2}

    def test_arithmetic_binding(self):
        program = parse_program("next(X, Y) :- num(X), Y = X + 1.")
        db = Database()
        db.add_facts("num", [(1,), (2,)])
        result = evaluate(program, db)
        assert result.facts("next") == {(1, 2), (2, 3)}

    def test_arithmetic_as_test(self):
        program = parse_program("double(X, Y) :- pair(X, Y), Y = X * 2.")
        db = Database()
        db.add_facts("pair", [(2, 4), (2, 5)])
        result = evaluate(program, db)
        assert result.facts("double") == {(2, 4)}

    def test_exact_integer_division_stays_int(self):
        """Regression: `/` used truediv, so `8 / 2` derived `(8, 4.0)` and
        the float tuple failed set-equality against int-derived facts."""
        program = parse_program("half(X, Y) :- num(X), Y = X / 2.")
        db = Database()
        db.add_facts("num", [(8,), (7,)])
        result = evaluate(program, db)
        assert result.facts("half") == {(8, 4), (7, 3.5)}
        exact = next(y for x, y in result.facts("half") if x == 8)
        assert isinstance(exact, int)
        inexact = next(y for x, y in result.facts("half") if x == 7)
        assert isinstance(inexact, float)

    def test_int_division_result_joins_with_int_facts(self):
        program = parse_program(
            "half(Y) :- num(X), Y = X / 2. hit(Y) :- half(Y), target(Y)."
        )
        db = Database()
        db.add_facts("num", [(8,)])
        db.add_facts("target", [(4,)])
        result = evaluate(program, db)
        assert result.facts("hit") == {(4,)}

    def test_float_division_still_true_division(self):
        program = parse_program("q(Y) :- v(X), Y = X / 2.")
        db = Database()
        db.add_facts("v", [(5.0,)])
        result = evaluate(program, db)
        assert result.facts("q") == {(2.5,)}

    def test_equality_binds(self):
        program = parse_program("alias(X, Y) :- num(X), Y = X.")
        db = Database()
        db.add_facts("num", [(1,)])
        result = evaluate(program, db)
        assert result.facts("alias") == {(1, 1)}

    def test_incomparable_values_raise(self):
        program = parse_program("bad(X) :- v(X), X < 3.")
        db = Database()
        db.add_facts("v", [("a",)])
        with pytest.raises(EvaluationError):
            evaluate(program, db)

    def test_division_by_zero_raises(self):
        program = parse_program("bad(Y) :- v(X), Y = 1 / X.")
        db = Database()
        db.add_facts("v", [(0,)])
        with pytest.raises(EvaluationError):
            evaluate(program, db)

    def test_min_max(self):
        program = parse_program("m(Z) :- p(X, Y), Z = max(X, Y).")
        db = Database()
        db.add_facts("p", [(3, 7)])
        result = evaluate(program, db)
        assert result.facts("m") == {(7,)}


class TestMethodsAgree:
    @pytest.mark.parametrize("n", [1, 4, 9])
    def test_naive_equals_seminaive_tc(self, n):
        program = parse_program(TC_PROGRAM)
        db = chain_db(n)
        assert evaluate(program, db, "naive").to_dict() == evaluate(
            program, db, "seminaive"
        ).to_dict()

    def test_naive_equals_seminaive_negation(self):
        program = parse_program(
            TC_PROGRAM
            + """
            node(X) :- e(X, _).
            node(X) :- e(_, X).
            un(X, Y) :- node(X), node(Y), not tc(X, Y).
            """
        )
        db = chain_db(4)
        assert evaluate(program, db, "naive").to_dict() == evaluate(
            program, db, "seminaive"
        ).to_dict()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            Engine(method="magic")


class TestRepeatedVariables:
    def test_repeated_in_body_atom(self):
        program = parse_program("loop(X) :- e(X, X).")
        db = Database()
        db.add_facts("e", [("a", "a"), ("a", "b")])
        result = evaluate(program, db)
        assert result.facts("loop") == {("a",)}

    def test_repeated_in_head(self):
        program = parse_program("d(X, X) :- v(X).")
        db = Database()
        db.add_facts("v", [("a",)])
        result = evaluate(program, db)
        assert result.facts("d") == {("a", "a")}

    def test_constant_in_body(self):
        program = parse_program("from_a(Y) :- e(a, Y).")
        db = Database()
        db.add_facts("e", [("a", "b"), ("c", "d")])
        result = evaluate(program, db)
        assert result.facts("from_a") == {("b",)}

    def test_constant_in_head(self):
        program = parse_program("tagged(marker, X) :- v(X).")
        db = Database()
        db.add_facts("v", [("a",)])
        result = evaluate(program, db)
        assert result.facts("tagged") == {("marker", "a")}


class TestQueryHelpers:
    def test_query_binds_goal_variables(self):
        answers = query(parse_program(TC_PROGRAM), chain_db(3), parse_atom("tc(n0, Y)"))
        assert answers == {("n1",), ("n2",), ("n3",)}

    def test_query_ground_goal(self):
        answers = query(parse_program(TC_PROGRAM), chain_db(2), parse_atom("tc(n0, n2)"))
        assert answers == {()}
        answers = query(parse_program(TC_PROGRAM), chain_db(2), parse_atom("tc(n2, n0)"))
        assert answers == set()

    def test_match_atom_repeated_variable(self):
        db = Database()
        db.add_facts("p", [("a", "a"), ("a", "b")])
        assert match_atom(db, parse_atom("p(X, X)")) == {("a",)}

    def test_match_atom_unknown_predicate(self):
        assert match_atom(Database(), parse_atom("nope(X)")) == set()


class TestStats:
    def test_stats_collected(self):
        engine = Engine()
        engine.evaluate(parse_program(TC_PROGRAM), chain_db(5))
        assert engine.stats.facts_derived == 15
        assert engine.stats.iterations >= 5

    def test_seminaive_fires_less_than_naive(self):
        naive = Engine(method="naive")
        naive.evaluate(parse_program(TC_PROGRAM), chain_db(30))
        semi = Engine(method="seminaive")
        semi.evaluate(parse_program(TC_PROGRAM), chain_db(30))
        assert semi.stats.facts_derived == naive.stats.facts_derived

    def test_unsafe_program_rejected_before_running(self):
        with pytest.raises(SafetyError):
            evaluate(parse_program("h(X, Y) :- p(X)."), Database())
