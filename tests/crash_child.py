"""Child process for crash-recovery tests: commit edges until killed.

Usage::

    python crash_child.py DATA_DIR N_COMMITS FSYNC_POLICY [CHECKPOINT_EVERY]

Recovers the store under ``DATA_DIR``, then commits deterministic edges
(``ci -> c(i+1)`` labeled ``crash``, numbered from the recovered version)
one transaction at a time, printing ``committed <version>`` (flushed) after
each.  The parent reads those lines, SIGKILLs the process at an arbitrary
point, and asserts the recovered store matches a prefix of what was
acknowledged.  Exits 0 if all commits complete before the kill arrives.
"""

import sys

sys.path.insert(0, "src")

from repro.persist import DurabilityManager, PersistenceConfig  # noqa: E402


def expected_graph_at(version):
    """The graph any run of this script produces after *version* commits."""
    from repro.graphs.multigraph import LabeledMultigraph

    graph = LabeledMultigraph()
    for i in range(version):
        graph.add_edge(f"c{i}", f"c{i + 1}", "crash")
    return graph


def main(argv):
    data_dir, n_commits, fsync = argv[0], int(argv[1]), argv[2]
    checkpoint_every = int(argv[3]) if len(argv) > 3 else 0
    manager = DurabilityManager(
        PersistenceConfig(
            data_dir,
            fsync=fsync,
            fsync_interval=0.001,
            checkpoint_every=checkpoint_every,
        )
    )
    store = manager.recover()
    session = store.session()
    for i in range(store.version, n_commits):
        with session.transaction() as txn:
            txn.add_edge(f"c{i}", f"c{i + 1}", "crash")
        print(f"committed {store.version}", flush=True)
    manager.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
