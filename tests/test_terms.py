"""Unit tests for Datalog terms."""

import pytest

from repro.datalog.terms import (
    Constant,
    FreshVariables,
    Sentinel,
    Variable,
    make_constant,
    make_term,
    make_variable,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("P1")) == "P1"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_anonymous(self):
        assert Variable("_").is_anonymous
        assert Variable("_x").is_anonymous
        assert not Variable("X").is_anonymous

    def test_not_equal_to_constant(self):
        assert Variable("x") != Constant("x")

    def test_is_variable_flag(self):
        assert Variable("X").is_variable
        assert not Variable("X").is_constant


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant("3")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_str_lowercase_identifier_bare(self):
        assert str(Constant("toronto")) == "toronto"

    def test_str_hyphenated_bare(self):
        assert str(Constant("async-io")) == "async-io"

    def test_str_uppercase_quoted(self):
        assert str(Constant("Toronto")) == "'Toronto'"

    def test_str_number(self):
        assert str(Constant(42)) == "42"

    def test_is_constant_flag(self):
        assert Constant(1).is_constant
        assert not Constant(1).is_variable


class TestSentinel:
    def test_equality_by_name(self):
        assert Sentinel("sg") == Sentinel("sg")
        assert Sentinel("sg") != Sentinel("c")

    def test_auto_names_unique(self):
        assert Sentinel() != Sentinel()

    def test_never_equals_plain_values(self):
        assert Sentinel("sg") != "sg"
        assert Constant(Sentinel("sg")) != Constant("sg")

    def test_hashable(self):
        assert len({Sentinel("a"), Sentinel("a")}) == 1


class TestMakeTerm:
    def test_uppercase_is_variable(self):
        assert make_term("X") == Variable("X")

    def test_underscore_is_variable(self):
        assert make_term("_") == Variable("_")

    def test_lowercase_is_constant(self):
        assert make_term("ann") == Constant("ann")

    def test_number_is_constant(self):
        assert make_term(7) == Constant(7)

    def test_term_passthrough(self):
        v = Variable("X")
        assert make_term(v) is v

    def test_make_constant_rejects_variable(self):
        with pytest.raises(TypeError):
            make_constant(Variable("X"))

    def test_make_variable_rejects_constant(self):
        with pytest.raises(TypeError):
            make_variable(Constant("a"))

    def test_make_variable_from_string(self):
        assert make_variable("Y") == Variable("Y")


class TestFreshVariables:
    def test_avoids_used(self):
        gen = FreshVariables([Variable("V0"), Variable("V1")])
        fresh = gen.fresh()
        assert fresh.name not in ("V0", "V1")

    def test_distinct_stream(self):
        gen = FreshVariables()
        names = {gen.fresh().name for _ in range(50)}
        assert len(names) == 50

    def test_reserve(self):
        gen = FreshVariables()
        gen.reserve("V0")
        assert gen.fresh().name != "V0"

    def test_hint(self):
        gen = FreshVariables()
        assert gen.fresh(hint="Z").name.startswith("Z")
