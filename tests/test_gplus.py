"""Tests for the G+ compatibility layer."""

import pytest

from repro.datalog.terms import Variable
from repro.datasets.airlines import figure12_graph
from repro.errors import QueryGraphError
from repro.gplus import GPlusEngine, GPlusQuery, evaluate_gplus
from repro.graphs.multigraph import LabeledMultigraph

C = Variable("C")
X = Variable("X")
Y = Variable("Y")


def rt_scale_query():
    q = GPlusQuery("rt-scale")
    q.pattern("rome", "C", "CP+")
    q.pattern("C", "tokyo", "CP+")
    q.summary("C", "C", "RT-scale")
    return q


class TestValidation:
    def test_needs_pattern(self):
        with pytest.raises(QueryGraphError):
            GPlusQuery().validate()

    def test_summary_variables_must_occur(self):
        q = GPlusQuery()
        q.pattern("a", "X", "r")
        q.summary("X", "Z", "out")
        with pytest.raises(QueryGraphError):
            q.validate()

    def test_variables_ordered(self):
        q = GPlusQuery()
        q.pattern("X", "Y", "r")
        q.pattern("Y", "Z", "s")
        assert [v.name for v in q.variables()] == ["X", "Y", "Z"]


class TestEvaluation:
    def test_figure12_rt_scale(self):
        engine = GPlusEngine(figure12_graph())
        bindings = engine.bindings(rt_scale_query())
        cities = sorted(b[C] for b in bindings)
        assert cities == ["geneva", "montreal", "toronto", "vancouver"]

    def test_summary_graph_loops(self):
        _bindings, summary = evaluate_gplus(figure12_graph(), rt_scale_query())
        assert summary.has_edge("geneva", "geneva", "RT-scale")
        assert summary.edge_count() == 4

    def test_constant_to_constant(self):
        q = GPlusQuery()
        q.pattern("rome", "tokyo", "CP+")
        engine = GPlusEngine(figure12_graph())
        assert len(engine.bindings(q)) == 1  # the empty binding: it holds

    def test_unsatisfiable(self):
        q = GPlusQuery()
        q.pattern("tokyo", "rome", "CP+")
        engine = GPlusEngine(figure12_graph())
        assert engine.bindings(q) == []

    def test_join_across_edges(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "c", "y")
        g.add_edge("a", "d", "x")  # d has no outgoing y
        q = GPlusQuery()
        q.pattern("X", "Y", "x")
        q.pattern("Y", "Z", "y")
        engine = GPlusEngine(g)
        bindings = engine.bindings(q)
        assert len(bindings) == 1
        assert bindings[0][Variable("Y")] == "b"

    def test_witness_paths(self):
        engine = GPlusEngine(figure12_graph())
        bindings = engine.bindings(rt_scale_query())
        binding = next(b for b in bindings if b[C] == "montreal")
        first, second = engine.witness_paths(rt_scale_query(), binding)
        assert [e.label for e in first] == ["CP", "CP"]
        assert first[-1].target == "montreal"
        assert second[0].source == "montreal"

    def test_simple_path_answers_subset(self):
        engine = GPlusEngine(figure12_graph())
        all_bindings = engine.bindings(rt_scale_query())
        simple = engine.simple_path_answers(rt_scale_query())
        keys = lambda bs: {tuple(sorted((v.name, b[v]) for v in b)) for b in bs}
        assert keys(simple) <= keys(all_bindings)
        # On this acyclic CP subgraph every answer is simply witnessed.
        assert keys(simple) == keys(all_bindings)

    def test_inverted_symbol_pattern(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        q = GPlusQuery()
        q.pattern("b", "Y", "-x")
        engine = GPlusEngine(g)
        bindings = engine.bindings(q)
        assert [b[Y] for b in bindings] == ["a"]


class TestEngineInternals:
    def test_unpinned_source_pattern(self):
        # The first edge's source variable is unpinned: full pairs scan.
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("c", "b", "x")
        q = GPlusQuery()
        q.pattern("X", "b", "x")
        engine = GPlusEngine(g)
        assert {b[X] for b in engine.bindings(q)} == {"a", "c"}

    def test_shared_variable_three_edges(self):
        g = LabeledMultigraph()
        g.add_edge("a", "m", "x")
        g.add_edge("m", "b", "y")
        g.add_edge("m", "c", "z")
        q = GPlusQuery()
        q.pattern("a", "M", "x")
        q.pattern("M", "B", "y")
        q.pattern("M", "C", "z")
        engine = GPlusEngine(g)
        bindings = engine.bindings(q)
        assert len(bindings) == 1
        binding = bindings[0]
        assert binding[Variable("M")] == "m"
        assert binding[Variable("B")] == "b"
        assert binding[Variable("C")] == "c"

    def test_summary_with_constants_only(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        q = GPlusQuery()
        q.pattern("a", "b", "x")
        q.summary("a", "b", "hit")
        engine = GPlusEngine(g)
        summary = engine.summary_graph(q)
        assert summary.has_edge("a", "b", "hit")

    def test_same_variable_source_and_target(self):
        g = LabeledMultigraph()
        g.add_edge("a", "a", "x")
        g.add_edge("a", "b", "x")
        q = GPlusQuery()
        q.pattern("X", "X", "x")
        engine = GPlusEngine(g)
        assert {b[X] for b in engine.bindings(q)} == {"a"}
