"""Every module imports cleanly and the public API surface is intact."""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    # __main__ runs the CLI at import time by design.
    if name != "repro.__main__"
)


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} is missing a module docstring"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "package",
    [
        "repro.core",
        "repro.datalog",
        "repro.graphs",
        "repro.rpq",
        "repro.translation",
        "repro.fo_tc",
        "repro.aggregation",
        "repro.ham",
        "repro.gplus",
        "repro.datasets",
        "repro.visual",
        "repro.service",
    ],
)
def test_package_all_resolves(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name}"


def test_expected_module_count():
    # A tripwire against accidentally dropping packages from the build.
    assert len(MODULES) >= 60, MODULES
