"""Tests for the durability subsystem: WAL, checkpoints, recovery."""

import glob
import json
import logging
import os

import pytest

from repro.errors import StoreError, TransactionError
from repro.graphs.bridge import EdgeLabel
from repro.graphs.multigraph import LabeledMultigraph
from repro.ham.delta import compute_delta
from repro.ham.store import HAMStore, TransactionRecord, _Op
from repro.persist import (
    DurabilityManager,
    PersistenceConfig,
    delta_from_json,
    delta_to_json,
    latest_valid_checkpoint,
    list_checkpoints,
    op_from_json,
    op_to_json,
    record_from_json,
    record_to_json,
    scan_segment,
    write_checkpoint,
)
from repro.persist import wal as wal_mod


def durable_store(data_dir, **kwargs):
    manager = DurabilityManager(PersistenceConfig(str(data_dir), **kwargs))
    return manager, manager.recover()


def commit_chain(store, n, start=0, label="x"):
    session = store.session()
    for i in range(start, start + n):
        with session.transaction() as txn:
            txn.add_edge(f"n{i}", f"n{i + 1}", label)


def wal_segments(data_dir):
    return sorted(glob.glob(os.path.join(str(data_dir), "wal", "*.seg")))


# ------------------------------------------------------------------ serde


class TestSerde:
    def ops_of_all_kinds(self):
        return [
            _Op(_Op.ADD_NODE, "plain", None),
            _Op(_Op.ADD_NODE, ("rome", 7), frozenset({"capital", "large"})),
            _Op(_Op.SET_NODE_LABEL, "plain", 42),
            _Op(_Op.ADD_EDGE, "a", "b", "cheap"),
            _Op(_Op.ADD_EDGE, ("x", 1), ("y", 2.5), EdgeLabel("flight", ("21:45", True))),
            _Op(_Op.REMOVE_EDGE, "a", "b", "cheap"),
            _Op(_Op.REMOVE_NODE, "plain"),
        ]

    def test_op_round_trip(self):
        for op in self.ops_of_all_kinds():
            back = op_from_json(json.loads(json.dumps(op_to_json(op))))
            assert back.kind == op.kind
            assert back.args == op.args

    def test_record_round_trip_with_delta(self):
        graph = LabeledMultigraph()
        ops = [
            _Op(_Op.ADD_NODE, "a", None),
            _Op(_Op.ADD_EDGE, "a", "b", EdgeLabel("link")),
            _Op(_Op.ADD_NODE, "c", frozenset({"mark"})),
        ]
        delta = compute_delta(graph, ops)
        record = TransactionRecord(3, 9, ops, version=7, delta=delta)
        back = record_from_json(json.loads(json.dumps(record_to_json(record))))
        assert (back.txn_id, back.session_id, back.version) == (3, 9, 7)
        assert [op.kind for op in back.operations] == [op.kind for op in ops]
        assert back.delta == delta

    def test_delta_round_trip_equality(self):
        graph = LabeledMultigraph()
        graph.add_edge("a", "b", "link")
        graph.add_node("gone", "old")
        ops = [
            _Op(_Op.REMOVE_EDGE, "a", "b", "link"),
            _Op(_Op.REMOVE_NODE, "gone"),
            _Op(_Op.ADD_EDGE, ("t", 1), ("t", 2), EdgeLabel("flight", (930,))),
        ]
        delta = compute_delta(graph, ops)
        assert delta_from_json(json.loads(json.dumps(delta_to_json(delta)))) == delta

    def test_record_without_delta(self):
        record = TransactionRecord(1, 1, [_Op(_Op.ADD_NODE, "a", None)], version=1)
        assert record_from_json(record_to_json(record)).delta is None


# -------------------------------------------------------------------- WAL


class TestWalFraming:
    def test_append_scan_round_trip(self, tmp_path):
        writer = wal_mod.WalWriter(str(tmp_path), fsync="always")
        writer.open(next_version=1)
        payloads = [{"version": i, "data": "x" * i} for i in range(1, 6)]
        for payload in payloads:
            writer.append(payload)
        writer.close()
        records, good, corruption = scan_segment(writer.segment_path)
        assert corruption is None
        assert [p for _off, p in records] == payloads
        assert good == os.path.getsize(writer.segment_path)

    def test_torn_header_detected(self, tmp_path):
        writer = wal_mod.WalWriter(str(tmp_path), fsync="off")
        writer.open(next_version=1)
        writer.append({"version": 1})
        writer.close()
        with open(writer.segment_path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # 3 stray bytes: not even a header
        records, good, corruption = scan_segment(writer.segment_path)
        assert len(records) == 1
        assert corruption is not None and "header" in corruption.reason

    def test_torn_payload_detected(self, tmp_path):
        writer = wal_mod.WalWriter(str(tmp_path), fsync="off")
        writer.open(next_version=1)
        writer.append({"version": 1})
        writer.append({"version": 2, "pad": "y" * 100})
        writer.close()
        size = os.path.getsize(writer.segment_path)
        with open(writer.segment_path, "r+b") as handle:
            handle.truncate(size - 30)
        records, _good, corruption = scan_segment(writer.segment_path)
        assert [p["version"] for _off, p in records] == [1]
        assert "payload" in corruption.reason

    def test_bit_flip_detected_by_crc(self, tmp_path):
        writer = wal_mod.WalWriter(str(tmp_path), fsync="off")
        writer.open(next_version=1)
        writer.append({"version": 1, "pad": "z" * 50})
        writer.close()
        data = bytearray(open(writer.segment_path, "rb").read())
        data[20] ^= 0x40
        open(writer.segment_path, "wb").write(bytes(data))
        records, good, corruption = scan_segment(writer.segment_path)
        assert records == [] and good == 0
        assert "CRC" in corruption.reason

    def test_rotation_by_size(self, tmp_path):
        writer = wal_mod.WalWriter(str(tmp_path), fsync="off", segment_bytes=64)
        writer.open(next_version=1)
        for version in range(1, 6):
            writer.append({"version": version, "pad": "p" * 40}, next_version=version + 1)
        writer.close()
        segments = wal_mod.list_segments(str(tmp_path))
        assert len(segments) >= 3
        # Segment names carry the version of their first record.
        for first, path in segments:
            records, _good, corruption = scan_segment(path)
            assert corruption is None
            if records:
                assert records[0][1]["version"] == first

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            wal_mod.WalWriter(str(tmp_path), fsync="sometimes")
        with pytest.raises(StoreError):
            PersistenceConfig(str(tmp_path), fsync="sometimes")


# ------------------------------------------------------------- checkpoints


class TestCheckpoints:
    def test_write_and_load_latest(self, tmp_path):
        graph = LabeledMultigraph()
        graph.add_edge("a", "b", EdgeLabel("link"))
        write_checkpoint(str(tmp_path), 3, 4, graph)
        version, last_txn, loaded, _path = latest_valid_checkpoint(str(tmp_path))
        assert (version, last_txn) == (3, 4)
        assert loaded == graph

    def test_newest_invalid_falls_back(self, tmp_path, caplog):
        graph = LabeledMultigraph()
        graph.add_node("only")
        write_checkpoint(str(tmp_path), 1, 1, graph)
        bad = tmp_path / "checkpoint-00000000000000000009.json"
        bad.write_text("{ not json")
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            version, _txn, loaded, _path = latest_valid_checkpoint(str(tmp_path))
        assert version == 1 and loaded.has_node("only")
        assert any("skipping unreadable checkpoint" in r.message for r in caplog.records)

    def test_interrupted_tmp_removed_on_recovery(self, tmp_path, caplog):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 3)
        manager.checkpoint()
        manager.close()
        # Simulate a crash between the temp write and the rename.
        leftover = tmp_path / "checkpoint-00000000000000000099.json.tmp"
        leftover.write_text('{"format": "repro-checkpoint", "half": true')
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            manager2, store2 = durable_store(tmp_path)
        assert not leftover.exists()
        assert store2.version == 3
        assert any("interrupted checkpoint" in r.message for r in caplog.records)
        manager2.close()

    def test_old_checkpoints_pruned(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="off", keep_checkpoints=2)
        for round_no in range(4):
            commit_chain(store, 2, start=round_no * 2)
            manager.checkpoint()
        assert len(list_checkpoints(str(tmp_path))) == 2
        manager.close()

    def test_checkpoint_prunes_covered_segments(self, tmp_path):
        manager, store = durable_store(
            tmp_path, fsync="off", segment_bytes=1, keep_checkpoints=1
        )
        commit_chain(store, 5)  # segment_bytes=1: one segment per record
        assert len(wal_segments(tmp_path)) >= 5
        info = manager.checkpoint()
        assert info["segments_removed"] >= 4
        # Everything still recovers from checkpoint + surviving tail.
        manager.close()
        manager2, store2 = durable_store(tmp_path)
        assert store2.version == 5 and store2.graph == store.graph
        manager2.close()

    def test_checkpoint_skipped_when_no_new_commits(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="off")
        commit_chain(store, 1)
        first = manager.checkpoint()
        second = manager.checkpoint()
        assert not first.get("skipped")
        assert second.get("skipped")
        manager.close()

    def test_auto_checkpoint_every_n_commits(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="off", checkpoint_every=3)
        commit_chain(store, 7)
        assert manager.stats()["checkpoint"]["count"] == 2
        assert manager.stats()["checkpoint"]["last_version"] == 6
        manager.close()


# ---------------------------------------------------------------- recovery


class TestRecovery:
    def test_empty_directory_recovers_empty_store(self, tmp_path):
        manager, store = durable_store(tmp_path)
        assert store.version == 0
        assert store.graph.node_count() == 0
        manager.close()

    def test_full_cycle_graph_and_history(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="always")
        session = store.session()
        with session.transaction() as txn:
            txn.add_node("city", frozenset({"capital"}))
            txn.add_edge("city", "other", EdgeLabel("flight", ("21:45",)))
        with session.transaction() as txn:
            txn.remove_edge("city", "other", EdgeLabel("flight", ("21:45",)))
        manager.close()

        manager2, store2 = durable_store(tmp_path)
        assert store2.version == 2
        assert store2.graph == store.graph
        history = store2.history()
        assert [r.version for r in history] == [1, 2]
        assert history[0].delta is not None
        assert history[0].delta.insertions["flight"] == {("city", "other", "21:45")}
        manager2.close()

    def test_txn_ids_continue_after_recovery(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 3)
        manager.close()
        manager2, store2 = durable_store(tmp_path)
        commit_chain(store2, 1, start=10)
        assert store2.history()[-1].txn_id == 4
        manager2.close()

    def test_recovery_across_rotated_segments(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="off", segment_bytes=128)
        commit_chain(store, 20)
        assert len(wal_segments(tmp_path)) > 1
        manager.close()
        manager2, store2 = durable_store(tmp_path)
        assert store2.version == 20
        assert store2.graph == store.graph
        manager2.close()

    def test_torn_tail_truncated_with_warning(self, tmp_path, caplog):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 4)
        manager.close()
        (segment,) = wal_segments(tmp_path)
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) - 5)
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            manager2, store2 = durable_store(tmp_path)
        assert store2.version == 3
        assert store2.graph.edge_count() == 3
        assert any("truncating torn WAL tail" in r.message for r in caplog.records)
        assert manager2.stats()["recovery"]["truncated"] is True
        manager2.close()
        # After truncation the log is clean: a third recovery sees no tear.
        manager3, store3 = durable_store(tmp_path)
        assert store3.version == 3
        assert manager3.stats()["recovery"]["truncated"] is False
        manager3.close()

    def test_bit_flipped_record_truncated(self, tmp_path, caplog):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 5)
        manager.close()
        (segment,) = wal_segments(tmp_path)
        data = bytearray(open(segment, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(segment, "wb").write(bytes(data))
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            manager2, store2 = durable_store(tmp_path)
        # A prefix survives; the flipped record and everything after is gone.
        assert 0 <= store2.version < 5
        assert store2.graph.edge_count() == store2.version
        manager2.close()

    def test_commits_resume_after_torn_tail_recovery(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 4)
        manager.close()
        (segment,) = wal_segments(tmp_path)
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) - 1)
        manager2, store2 = durable_store(tmp_path, fsync="always")
        assert store2.version == 3
        commit_chain(store2, 2, start=100)
        manager2.close()
        manager3, store3 = durable_store(tmp_path)
        assert store3.version == 5
        assert store3.graph.has_edge("n100", "n101", "x")
        manager3.close()

    def test_recover_into_nonempty_store_rejected(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="off")
        commit_chain(store, 1)
        manager.close()
        populated = HAMStore()
        commit_chain(populated, 2)
        with pytest.raises(StoreError):
            DurabilityManager(PersistenceConfig(str(tmp_path))).recover(store=populated)

    def test_adopting_populated_store_into_empty_dir(self, tmp_path):
        populated = HAMStore()
        commit_chain(populated, 3)
        manager = DurabilityManager(PersistenceConfig(str(tmp_path), fsync="always"))
        adopted = manager.recover(store=populated)
        assert adopted is populated
        commit_chain(populated, 1, start=50)
        manager.close()
        manager2, store2 = durable_store(tmp_path)
        assert store2.version == 4
        assert store2.graph == populated.graph
        manager2.close()

    def test_double_recover_rejected(self, tmp_path):
        manager, _store = durable_store(tmp_path)
        with pytest.raises(StoreError):
            manager.recover()
        manager.close()


# ------------------------------------------------------ store integration


class TestStoreIntegration:
    def test_wal_append_failure_aborts_commit(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 2)
        manager._writer.close()  # simulate a dead disk: appends now fail
        manager._writer._handle = None
        session = store.session()
        txn = session.transaction()
        txn.add_edge("bad", "commit", "x")
        with pytest.raises(TransactionError):
            txn.commit()
        assert store.version == 2
        assert not store.graph.has_node("bad")
        assert len(store.history()) == 2

    def test_closed_manager_rejects_commits(self, tmp_path):
        manager, store = durable_store(tmp_path)
        manager.close()
        session = store.session()
        # close() detaches, so plain in-memory commits keep working.
        with session.transaction() as txn:
            txn.add_edge("a", "b", "x")
        assert store.version == 1

    def test_graph_at_uses_checkpoint_base(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="off", keep_checkpoints=4)
        commit_chain(store, 4)
        manager.checkpoint()
        commit_chain(store, 4, start=4)
        store.truncate_history(keep_last=2)
        # Versions 7..8 replay in memory; 4..6 come from checkpoint + WAL.
        for version in (4, 5, 6, 7, 8):
            assert store.graph_at(version).edge_count() == version
        # Checkpointing pruned the segments below version 4: that history
        # is gone on purpose, and the error says so.
        with pytest.raises(StoreError, match="pruned by checkpointing"):
            store.graph_at(2)
        manager.close()

    def test_stats_surface_durability(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 3)
        manager.checkpoint()
        stats = store.stats()
        assert stats["retained_records"] == 3
        durable = stats["durability"]
        assert durable["wal"]["appends"] == 3
        assert durable["wal"]["bytes"] > 0
        assert durable["wal"]["fsyncs"] >= 3
        assert durable["checkpoint"]["last_version"] == 3
        assert durable["recovery"]["recovered_version"] == 0
        manager.close()

    def test_fsync_policies_all_commit(self, tmp_path):
        for policy in ("always", "interval", "off"):
            directory = tmp_path / policy
            manager, store = durable_store(directory, fsync=policy)
            commit_chain(store, 3)
            manager.close()
            manager2, store2 = durable_store(directory)
            assert store2.version == 3
            manager2.close()


# ------------------------------------------------------------------ epoch


class TestEpochPersistence:
    def test_epoch_minted_once_and_stable_across_restarts(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="off")
        epoch = store.epoch
        assert manager.epoch == epoch
        document = json.load(open(tmp_path / "epoch.json", encoding="utf-8"))
        assert document == {"format": "repro-epoch", "epoch": epoch}
        info = manager.stats()["recovery"]
        assert info["epoch"] == epoch
        assert info["epoch_rotated"] is False
        commit_chain(store, 3)
        manager.close()
        manager2, store2 = durable_store(tmp_path)
        assert store2.epoch == epoch, "clean restart must keep the epoch"
        assert manager2.stats()["recovery"]["epoch_rotated"] is False
        manager2.close()

    def test_epoch_rotates_when_recovery_truncates(self, tmp_path):
        manager, store = durable_store(tmp_path, fsync="always")
        commit_chain(store, 4)
        epoch = store.epoch
        manager.close()
        (segment,) = wal_segments(tmp_path)
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) - 5)
        manager2, store2 = durable_store(tmp_path)
        assert store2.version == 3
        assert store2.epoch != epoch, "truncation rewrote history"
        info = manager2.stats()["recovery"]
        assert info["truncated"] is True
        assert info["epoch_rotated"] is True
        assert info["epoch"] == store2.epoch
        assert "epoch" in manager2.health_info()
        manager2.close()
        # The rotated epoch is itself durable across the next clean restart.
        manager3, store3 = durable_store(tmp_path)
        assert store3.epoch == store2.epoch
        assert manager3.stats()["recovery"]["epoch_rotated"] is False
        manager3.close()

    def test_adoption_persists_the_store_epoch(self, tmp_path):
        from repro.persist.epoch import load_epoch

        store = HAMStore()
        commit_chain(store, 2)
        manager = DurabilityManager(PersistenceConfig(str(tmp_path), fsync="off"))
        adopted = manager.recover(store)
        assert adopted is store
        assert load_epoch(str(tmp_path)) == store.epoch
        manager.close()

    def test_unreadable_epoch_file_mints_fresh(self, tmp_path, caplog):
        from repro.persist.epoch import load_epoch, store_epoch

        assert load_epoch(str(tmp_path)) is None
        store_epoch(str(tmp_path), "cafe0123cafe0123")
        assert load_epoch(str(tmp_path)) == "cafe0123cafe0123"
        (tmp_path / "epoch.json").write_text("not json at all")
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            assert load_epoch(str(tmp_path)) is None
        (tmp_path / "epoch.json").write_text('{"format": "other", "epoch": "x"}')
        assert load_epoch(str(tmp_path)) is None
        # Recovery over the bad file mints (and persists) a fresh epoch.
        manager, store = durable_store(tmp_path, fsync="off")
        assert load_epoch(str(tmp_path)) == store.epoch
        manager.close()
