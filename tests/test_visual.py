"""Tests for DOT/ASCII rendering and answer highlighting."""

from repro.core.dsl import parse_graphical_query, parse_query_graph
from repro.datasets.airlines import figure12_graph
from repro.datasets.flights import figure1_graph
from repro.visual.ascii_art import (
    render_database,
    render_graph,
    render_graphical_query,
    render_query_graph,
    render_relation,
)
from repro.visual.dot import graph_to_dot, graphical_query_to_dot, query_graph_to_dot
from repro.visual.highlight import (
    answer_union_graph,
    answers_one_by_one,
    highlight_rpq,
    new_edges_graph,
)

FIG2 = """
define (P1) -[not-desc-of(P2)]-> (P3) {
    (P1) -[descendant+]-> (P3);
    (P2) -[~descendant+]-> (P3);
    person(P2);
}
"""


class TestDot:
    def test_graph_to_dot_nodes_and_edges(self):
        dot = graph_to_dot(figure1_graph())
        assert dot.startswith("digraph")
        assert '"ottawa"' in dot
        assert "capital" in dot  # node annotation shown
        assert "->" in dot

    def test_query_graph_conventions(self):
        dot = query_graph_to_dot(parse_query_graph(FIG2))
        assert "style=dashed" in dot  # closure edge
        assert "style=bold" in dot  # distinguished edge
        assert "color=red" in dot  # negated edge
        assert "¬" in dot

    def test_clustered_graphical_query(self):
        q = parse_graphical_query(
            FIG2
            + """
            define (X) -[reach]-> (Y) {
                (X) -[descendant+]-> (Y);
            }
            """
        )
        dot = graphical_query_to_dot(q)
        assert dot.count("subgraph cluster_") == 2
        # Same variable names in different graphs stay distinct nodes.
        assert '"g0_(P1)"' in dot and '"g1_(X)"' in dot

    def test_highlight_attrs(self):
        graph = figure12_graph()
        edges = [e for e in graph.edges if e.label == "CP"][:2]
        dot = graph_to_dot(graph, highlighted_edges=edges)
        assert dot.count("color=red") == 2

    def test_quoting(self):
        from repro.graphs.multigraph import LabeledMultigraph

        g = LabeledMultigraph()
        g.add_edge('we"ird', "b", 'la"bel')
        dot = graph_to_dot(g)
        assert '\\"' in dot


class TestAscii:
    def test_render_relation_table(self):
        text = render_relation(
            {("a", 1), ("bb", 22)}, header=("x", "n"), title="rows"
        )
        assert "rows" in text
        assert "bb" in text and "22" in text

    def test_render_relation_empty(self):
        assert "(empty)" in render_relation(set())

    def test_render_graph_lists_annotations(self):
        text = render_graph(figure1_graph())
        assert "ottawa  [capital]" in text

    def test_render_query_graph_roundtrips(self):
        g = parse_query_graph(FIG2)
        text = render_query_graph(g)
        g2 = parse_query_graph(text)
        assert g2.head_predicate == g.head_predicate

    def test_render_graphical_query_all_blocks(self):
        q = parse_graphical_query(FIG2)
        text = render_graphical_query(q, title="fig2")
        assert text.startswith("# fig2")
        assert "define" in text

    def test_render_database(self):
        from repro.datasets.flights import figure1_database

        text = render_database(figure1_database())
        assert "from/2" in text
        assert "capital/1" in text


class TestHighlight:
    def test_highlight_rpq(self):
        graph = figure12_graph()
        edges, dot = highlight_rpq(graph, "CP+", sources=["rome"])
        assert all(e.label == "CP" for e in edges)
        assert "penwidth=2.5" in dot

    def test_answers_one_by_one(self):
        paths = answers_one_by_one(figure12_graph(), "CP+", "rome", max_paths=3)
        assert 1 <= len(paths) <= 3
        assert all(e.label == "CP" for p in paths for e in p)

    def test_answer_union_graph_queryable(self):
        union = answer_union_graph(figure12_graph(), "CP+", sources=["rome"])
        assert union.labels() == {"CP"}
        # iterative filtering: query the filtered graph again
        from repro.rpq.evaluate import RPQEvaluator

        assert "tokyo" in RPQEvaluator(union).targets("CP+", "rome")

    def test_new_edges_graph(self):
        graph = figure12_graph()
        out = new_edges_graph(graph, [("geneva", "geneva")], "RT-scale")
        assert out.has_edge("geneva", "geneva", "RT-scale")
        assert graph.edge_count() + 1 == out.edge_count()
