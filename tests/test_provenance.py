"""Tests for derivation provenance and GraphLog answer highlighting."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.datalog.provenance import Derivation, explain, why
from repro.visual.highlight import highlight_graphlog

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)


def chain_db(n):
    db = Database()
    db.add_facts("e", [(f"n{i}", f"n{i+1}") for i in range(n)])
    return db


class TestEngineRecording:
    def test_disabled_by_default(self):
        engine = Engine()
        engine.evaluate(TC, chain_db(3))
        assert engine.provenance == {}

    def test_every_derived_fact_recorded(self):
        engine = Engine(record_provenance=True)
        result = engine.evaluate(TC, chain_db(4))
        for row in result.facts("tc"):
            assert ("tc", row) in engine.provenance

    def test_support_facts_are_real(self):
        engine = Engine(record_provenance=True)
        result = engine.evaluate(TC, chain_db(4))
        for (pred, row), (rule, support) in engine.provenance.items():
            assert rule.head.predicate == pred
            for sup_pred, sup_row in support:
                assert sup_row in result.facts(sup_pred)

    def test_naive_method_records_too(self):
        engine = Engine(method="naive", record_provenance=True)
        engine.evaluate(TC, chain_db(3))
        assert ("tc", ("n0", "n3")) in engine.provenance

    def test_cyclic_graph_well_founded(self):
        db = Database()
        db.add_facts("e", [("a", "b"), ("b", "a")])
        engine = Engine(record_provenance=True)
        engine.evaluate(TC, db)
        # explain must terminate even though the graph is cyclic.
        tree = explain(engine.provenance, "tc", ("a", "a"))
        assert tree.depth() < 10
        assert tree.base_facts() <= {("e", ("a", "b")), ("e", ("b", "a"))}


class TestExplain:
    def test_tree_structure(self):
        engine = Engine(record_provenance=True)
        engine.evaluate(TC, chain_db(3))
        tree = explain(engine.provenance, "tc", ("n0", "n3"))
        assert tree.predicate == "tc"
        assert not tree.is_base
        assert tree.base_facts() == {
            ("e", ("n0", "n1")),
            ("e", ("n1", "n2")),
            ("e", ("n2", "n3")),
        }

    def test_base_fact_tree(self):
        tree = explain({}, "e", ("a", "b"))
        assert tree.is_base
        assert tree.base_facts() == {("e", ("a", "b"))}
        assert tree.depth() == 0

    def test_why_helper(self):
        engine = Engine(record_provenance=True)
        engine.evaluate(TC, chain_db(2))
        assert why(engine.provenance, "tc", ("n0", "n2")) == {
            ("e", ("n0", "n1")),
            ("e", ("n1", "n2")),
        }

    def test_render_contains_rule_and_base(self):
        engine = Engine(record_provenance=True)
        engine.evaluate(TC, chain_db(2))
        text = explain(engine.provenance, "tc", ("n0", "n2")).render()
        assert "[base fact]" in text
        assert ":-" in text

    def test_negation_leaves_no_support(self):
        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            n(X) :- e(X, _).
            n(X) :- e(_, X).
            un(X, Y) :- n(X), n(Y), not tc(X, Y).
            """
        )
        engine = Engine(record_provenance=True)
        engine.evaluate(program, chain_db(2))
        tree = explain(engine.provenance, "un", ("n2", "n0"))
        # The support holds only the positive subgoals n(n2), n(n0).
        assert {child.predicate for child in tree.children} == {"n"}


class TestGraphLogExplain:
    QUERY = parse_graphical_query(
        """
        define (X) -[reach]-> (Y) {
            (X) -[link+]-> (Y);
        }
        """
    )

    def test_explain_answer(self):
        db = Database.from_facts(
            {"link": [("a", "b"), ("b", "c"), ("x", "y")]}
        )
        tree = GraphLogEngine().explain(self.QUERY, db, "reach", ("a", "c"))
        assert tree.base_facts() == {("link", ("a", "b")), ("link", ("b", "c"))}

    def test_highlight_graphlog(self):
        db = Database.from_facts(
            {"link": [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")]}
        )
        graph, edges, dot = highlight_graphlog(self.QUERY, db, "reach", ("a", "d"))
        pairs = {(e.source, e.target) for e in edges}
        assert pairs == {("a", "b"), ("b", "c"), ("c", "d")}
        assert dot.count("color=red") == 3

    def test_highlight_unknown_answer(self):
        db = Database.from_facts({"link": [("a", "b")]})
        with pytest.raises(KeyError):
            highlight_graphlog(self.QUERY, db, "reach", ("b", "a"))

    def test_highlight_skips_annotations(self):
        query = parse_graphical_query(
            """
            define (X) -[vip-reach]-> (Y) {
                (X) -[link+]-> (Y);
                vip(X);
            }
            """
        )
        db = Database.from_facts({"link": [("a", "b")], "vip": [("a",)]})
        _graph, edges, _dot = highlight_graphlog(query, db, "vip-reach", ("a", "b"))
        assert {(e.source, e.target) for e in edges} == {("a", "b")}


class TestDerivationClass:
    def test_fact_property(self):
        d = Derivation("p", ("a",))
        assert d.fact == ("p", ("a",))

    def test_depth_nested(self):
        leaf = Derivation("e", ("a", "b"))
        mid = Derivation("t", ("a", "b"), rule="r", children=[leaf])
        top = Derivation("q", ("a",), rule="r", children=[mid])
        assert top.depth() == 2
