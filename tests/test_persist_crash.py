"""Crash-recovery fault injection: SIGKILL a committing process, recover.

The quick smoke test runs in the default lane; the heavier randomized
loops are marked ``faultinject`` and run in their own CI job
(``pytest -m faultinject``).
"""

import os
import subprocess
import sys

import pytest

from tests.crash_child import expected_graph_at
from repro.persist import DurabilityManager, PersistenceConfig

CHILD = os.path.join(os.path.dirname(__file__), "crash_child.py")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def spawn_child(data_dir, n_commits, fsync, checkpoint_every=0):
    return subprocess.Popen(
        [
            sys.executable,
            CHILD,
            str(data_dir),
            str(n_commits),
            fsync,
            str(checkpoint_every),
        ],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def kill_after_acks(child, acks):
    """Read *acks* ``committed N`` lines, then SIGKILL; returns the last N."""
    last = 0
    for _ in range(acks):
        line = child.stdout.readline()
        if not line:
            break
        assert line.startswith("committed "), line
        last = int(line.split()[1])
    child.kill()
    child.wait(timeout=30)
    child.stdout.close()
    child.stderr.close()
    return last


def recover(data_dir):
    manager = DurabilityManager(PersistenceConfig(str(data_dir)))
    store = manager.recover()
    return manager, store


def assert_prefix_state(store, acked, n_commits, durable_floor):
    """Recovered state is a clean prefix: floor ≤ version ≤ total, graph exact."""
    assert durable_floor <= store.version <= n_commits, (
        f"recovered {store.version}, acked {acked}, expected "
        f">= {durable_floor} and <= {n_commits}"
    )
    assert store.graph == expected_graph_at(store.version)


class TestCrashRecoverySmoke:
    """One quick kill per policy — runs in the default fast lane."""

    def test_sigkill_mid_stream_fsync_always(self, tmp_path):
        child = spawn_child(tmp_path, n_commits=200, fsync="always")
        acked = kill_after_acks(child, 20)
        assert acked >= 20
        manager, store = recover(tmp_path)
        # fsync=always: every acknowledged commit survives the kill.
        assert_prefix_state(store, acked, 200, durable_floor=acked)
        manager.close()

    def test_sigkill_mid_stream_fsync_interval(self, tmp_path):
        child = spawn_child(tmp_path, n_commits=200, fsync="interval")
        acked = kill_after_acks(child, 30)
        manager, store = recover(tmp_path)
        # interval: a bounded suffix may be lost, but never a torn state.
        assert_prefix_state(store, acked, 200, durable_floor=0)
        manager.close()

    def test_restart_continues_after_kill(self, tmp_path):
        child = spawn_child(tmp_path, n_commits=500, fsync="always")
        kill_after_acks(child, 10)
        # Second run recovers and finishes the remaining commits cleanly.
        child2 = spawn_child(tmp_path, n_commits=40, fsync="always")
        out, err = child2.communicate(timeout=60)
        assert child2.returncode == 0, err
        manager, store = recover(tmp_path)
        assert store.version == 40
        assert store.graph == expected_graph_at(40)
        manager.close()


@pytest.mark.faultinject
class TestCrashRecoveryLoops:
    """Repeated randomized kills — excluded from the default lane."""

    @pytest.mark.parametrize("fsync", ["always", "interval"])
    def test_repeated_kills_converge(self, tmp_path, fsync):
        import random

        rng = random.Random(1234)
        n_commits = 300
        data_dir = tmp_path / fsync
        for round_no in range(8):
            child = spawn_child(data_dir, n_commits, fsync)
            acked = kill_after_acks(child, rng.randint(1, 40))
            manager, store = recover(data_dir)
            floor = acked if fsync == "always" else 0
            assert_prefix_state(store, acked, n_commits, durable_floor=floor)
            manager.close()
        # Let one run finish; the final state is exact.
        child = spawn_child(data_dir, n_commits, fsync)
        _out, err = child.communicate(timeout=120)
        assert child.returncode == 0, err
        manager, store = recover(data_dir)
        assert store.version == n_commits
        assert store.graph == expected_graph_at(n_commits)
        manager.close()

    def test_kills_with_checkpointing_active(self, tmp_path):
        import random

        rng = random.Random(99)
        n_commits = 250
        for _round in range(6):
            child = spawn_child(tmp_path, n_commits, "always", checkpoint_every=25)
            acked = kill_after_acks(child, rng.randint(5, 60))
            manager, store = recover(tmp_path)
            assert_prefix_state(store, acked, n_commits, durable_floor=acked)
            manager.close()

    def test_instant_kill_no_acks(self, tmp_path):
        child = spawn_child(tmp_path, n_commits=100, fsync="always")
        child.kill()
        child.wait(timeout=30)
        child.stdout.close()
        child.stderr.close()
        manager, store = recover(tmp_path)
        assert_prefix_state(store, 0, 100, durable_floor=0)
        manager.close()
