"""Tests for aggregates, semirings, and path summarization (Section 4)."""

import math

import pytest

from repro.aggregation.aggregates import AggregateProgram, AggregateRule, AggregateTerm, evaluate_with_aggregates
from repro.aggregation.semiring import COUNT_PATHS, MIN_PLUS, semiring_by_name
from repro.aggregation.summarize import (
    path_summarize,
    summarize_from,
    summarize_paths,
    weighted_edges_from_database,
)
from repro.datalog.ast import Comparison, atom, lit, neglit, rule
from repro.datalog.database import Database
from repro.errors import AggregationError, StratificationError


def sales_db():
    db = Database()
    db.add_facts(
        "sale",
        [
            ("tor", "jan", 10),
            ("tor", "feb", 30),
            ("ott", "jan", 5),
            ("ott", "feb", 5),
            ("mtl", "mar", 7),
        ],
    )
    return db


class TestAggregateRules:
    def test_count_groups(self):
        program = AggregateProgram(
            [AggregateRule("n-sales", ["C", AggregateTerm("count")], [lit("sale", "C", "M", "V")])]
        )
        out = evaluate_with_aggregates(program, sales_db())
        assert out.facts("n-sales") == {("tor", 2), ("ott", 2), ("mtl", 1)}

    def test_sum_min_max_avg(self):
        rules = AggregateProgram(
            [
                AggregateRule("total", ["C", AggregateTerm("sum", "V")], [lit("sale", "C", "M", "V")]),
                AggregateRule("lo", ["C", AggregateTerm("min", "V")], [lit("sale", "C", "M", "V")]),
                AggregateRule("hi", ["C", AggregateTerm("max", "V")], [lit("sale", "C", "M", "V")]),
                AggregateRule("mean", ["C", AggregateTerm("avg", "V")], [lit("sale", "C", "M", "V")]),
            ]
        )
        out = evaluate_with_aggregates(rules, sales_db())
        assert ("tor", 40) in out.facts("total")
        assert ("tor", 10) in out.facts("lo")
        assert ("tor", 30) in out.facts("hi")
        assert ("tor", 20.0) in out.facts("mean")

    def test_count_distinct_bindings_not_projections(self):
        # Two sales in jan across different cities: count per month sees both.
        program = AggregateProgram(
            [AggregateRule("per-month", ["M", AggregateTerm("count")], [lit("sale", "C", "M", "V")])]
        )
        out = evaluate_with_aggregates(program, sales_db())
        assert ("jan", 2) in out.facts("per-month")

    def test_global_aggregate_no_groups(self):
        program = AggregateProgram(
            [AggregateRule("grand", [AggregateTerm("sum", "V")], [lit("sale", "C", "M", "V")])]
        )
        out = evaluate_with_aggregates(program, sales_db())
        assert out.facts("grand") == {(57,)}

    def test_empty_body_result_yields_nothing(self):
        program = AggregateProgram(
            [AggregateRule("total", ["C", AggregateTerm("sum", "V")], [lit("nope", "C", "V")])]
        )
        out = evaluate_with_aggregates(program, sales_db())
        assert out.facts("total") == frozenset()

    def test_count_of_empty_group_absent(self):
        # count is only produced for existing groups (no 0 rows invented).
        program = AggregateProgram(
            [AggregateRule("n", ["C", AggregateTerm("count")], [lit("nope", "C")])]
        )
        out = evaluate_with_aggregates(program, sales_db())
        assert out.facts("n") == frozenset()

    def test_mixed_with_plain_rules(self):
        program = AggregateProgram(
            [
                AggregateRule("total", ["C", AggregateTerm("sum", "V")], [lit("sale", "C", "M", "V")]),
                rule(atom("big", "C"), lit("total", "C", "T"), Comparison(">", "T", 20)),
            ]
        )
        out = evaluate_with_aggregates(program, sales_db())
        assert out.facts("big") == {("tor",)}

    def test_aggregate_over_aggregate(self):
        program = AggregateProgram(
            [
                AggregateRule("total", ["C", AggregateTerm("sum", "V")], [lit("sale", "C", "M", "V")]),
                AggregateRule("best", [AggregateTerm("max", "T")], [lit("total", "C", "T")]),
            ]
        )
        out = evaluate_with_aggregates(program, sales_db())
        assert out.facts("best") == {(40,)}

    def test_aggregate_through_recursion_rejected(self):
        program = AggregateProgram(
            [
                rule(atom("p", "X", "V"), lit("q", "X", "V")),
                AggregateRule("q", ["X", AggregateTerm("sum", "V")], [lit("p", "X", "V")]),
            ]
        )
        with pytest.raises(StratificationError):
            evaluate_with_aggregates(program, Database())

    def test_validation(self):
        with pytest.raises(AggregationError):
            AggregateTerm("median", "X")
        with pytest.raises(AggregationError):
            AggregateTerm("sum")  # needs a variable
        with pytest.raises(AggregationError):
            AggregateRule("p", ["X"], [lit("q", "X")])  # no aggregate term

    def test_negation_inside_aggregate_body(self):
        db = sales_db()
        db.add_fact("excluded", "tor")
        program = AggregateProgram(
            [
                AggregateRule(
                    "total",
                    ["C", AggregateTerm("sum", "V")],
                    [lit("sale", "C", "M", "V"), neglit("excluded", "C")],
                )
            ]
        )
        out = evaluate_with_aggregates(program, db)
        cities = {c for c, _t in out.facts("total")}
        assert cities == {"ott", "mtl"}


class TestSemirings:
    def test_lookup(self):
        assert semiring_by_name("shortest") is MIN_PLUS
        with pytest.raises(KeyError):
            semiring_by_name("banana")

    def test_plus_all(self):
        assert MIN_PLUS.plus_all([3, 1, 2]) == 1
        assert MIN_PLUS.plus_all([]) == math.inf
        assert COUNT_PATHS.plus_all([1, 2]) == 3


DAG = [("a", "b", 3), ("b", "c", 2), ("a", "c", 10), ("c", "d", 1)]


class TestSummarize:
    def test_shortest(self):
        table = summarize_paths(DAG, "shortest")
        assert table[("a", "c")] == 5
        assert table[("a", "d")] == 6

    def test_longest(self):
        table = summarize_paths(DAG, "longest")
        assert table[("a", "c")] == 10
        assert table[("a", "d")] == 11

    def test_count(self):
        unit = [(u, v, 1) for u, v, _w in DAG]
        table = summarize_paths(unit, "count")
        assert table[("a", "c")] == 2
        assert table[("a", "d")] == 2

    def test_widest(self):
        table = summarize_paths(DAG, "widest")
        assert table[("a", "d")] == max(min(3, 2, 1), min(10, 1))

    def test_reach_bool(self):
        table = summarize_paths([("a", "b", True), ("b", "a", True)], "reach")
        assert table[("a", "a")] is True or table[("a", "a")] == 1

    def test_single_source(self):
        assert summarize_from("a", DAG, "shortest") == {"b": 3, "c": 5, "d": 6}

    def test_include_empty(self):
        table = summarize_paths(DAG, "shortest", include_empty=True)
        assert table[("a", "a")] == 0

    def test_longest_on_cycle_rejected(self):
        with pytest.raises(AggregationError):
            summarize_paths([("a", "b", 1), ("b", "a", 1)], "longest")

    def test_count_on_cycle_rejected(self):
        with pytest.raises(AggregationError):
            summarize_paths([("a", "b", 1), ("b", "a", 1)], "count")

    def test_shortest_on_cycle_ok(self):
        table = summarize_paths([("a", "b", 1), ("b", "a", 1)], "shortest")
        assert table[("a", "a")] == 2

    def test_no_path_pairs_absent(self):
        table = summarize_paths(DAG, "shortest")
        assert ("d", "a") not in table

    def test_database_facade(self):
        db = Database()
        db.add_facts("hop", [(u, v, w) for u, v, w in DAG])
        out = path_summarize(db, "hop", "shortest")
        assert ("a", "d", 6) in out.facts("hop-summary")
        assert "hop-summary" not in db  # original untouched

    def test_weight_extraction_arity_check(self):
        db = Database()
        db.add_facts("e", [("a", "b")])
        with pytest.raises(AggregationError):
            weighted_edges_from_database(db, "e")


class TestAggregatesWithRecursion:
    def test_recursion_above_aggregate(self):
        # Aggregate first (edge weights -> min per pair), then TC over the
        # aggregated relation: stratified and legal.
        db = Database()
        db.add_facts(
            "leg",
            [("a", "b", 5), ("a", "b", 3), ("b", "c", 2), ("x", "y", 9)],
        )
        program = AggregateProgram(
            [
                AggregateRule(
                    "best-leg",
                    ["U", "V", AggregateTerm("min", "W")],
                    [lit("leg", "U", "V", "W")],
                ),
                rule(atom("hop", "U", "V"), lit("best-leg", "U", "V", "W")),
                rule(atom("conn", "U", "V"), lit("hop", "U", "V")),
                rule(atom("conn", "U", "V"), lit("hop", "U", "Z"), lit("conn", "Z", "V")),
            ]
        )
        out = evaluate_with_aggregates(program, db)
        assert ("a", "b", 3) in out.facts("best-leg")
        assert ("a", "c") in out.facts("conn")
        assert ("a", "y") not in out.facts("conn")

    def test_summary_above_plain_rules(self):
        # Plain rule defines the weight relation; summary consumes it.
        from repro.aggregation.aggregates import PathSummaryRule

        db = Database()
        db.add_facts("affects", [("a", "b"), ("b", "c")])
        db.add_facts("duration", [("b", 4), ("c", 6)])
        program = AggregateProgram(
            [
                rule(
                    atom("moved", "U", "V", "D"),
                    lit("affects", "U", "V"),
                    lit("duration", "V", "D"),
                ),
                PathSummaryRule("longest-chain", "moved", "longest"),
            ]
        )
        out = evaluate_with_aggregates(program, db)
        assert ("a", "c", 10) in out.facts("longest-chain")

    def test_plain_rule_above_summary(self):
        from repro.aggregation.aggregates import PathSummaryRule

        db = Database()
        db.add_facts("hop", [("a", "b", 3), ("b", "c", 2)])
        program = AggregateProgram(
            [
                PathSummaryRule("dist", "hop", "shortest"),
                rule(
                    atom("close", "U", "V"),
                    lit("dist", "U", "V", "D"),
                    Comparison("<", "D", 4),
                ),
            ]
        )
        out = evaluate_with_aggregates(program, db)
        assert out.facts("close") == {("a", "b"), ("b", "c")}

    def test_summary_through_recursion_rejected(self):
        from repro.aggregation.aggregates import PathSummaryRule
        from repro.errors import StratificationError

        program = AggregateProgram(
            [
                PathSummaryRule("summary", "w", "shortest"),
                rule(atom("w", "U", "V", "D"), lit("summary", "U", "V", "D")),
            ]
        )
        with pytest.raises(StratificationError):
            evaluate_with_aggregates(program, Database())
