"""Tests for query graphs and graphical queries (Definitions 2.3-2.7)."""

import pytest

from repro.core.pre import closure, rel, seq, star
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.datalog.terms import Constant, Variable
from repro.errors import (
    DependenceCycleError,
    GhostVariableError,
    QueryGraphError,
)


def figure2_graph():
    g = QueryGraph()
    g.edge("P1", "P3", "descendant+")
    g.edge("P2", "P3", "~descendant+")
    g.annotate("P2", "person")
    g.distinguished("P1", "P3", "not-desc-of", extra=["P2"])
    return g


class TestBuilder:
    def test_nodes_identified_by_terms(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.edge("X", "Z", "e")
        assert len(g.nodes) == 3

    def test_multi_variable_nodes(self):
        g = QueryGraph()
        g.edge(("X", "Y"), ("U", "V"), "sg+")
        assert g.nodes[0] == (Variable("X"), Variable("Y"))

    def test_constant_nodes(self):
        g = QueryGraph()
        g.edge("P", "toronto", "residence")
        assert (Constant("toronto"),) in g.nodes

    def test_name_defaults_to_head(self):
        g = figure2_graph()
        assert g.name == "not-desc-of"
        assert g.head_predicate == "not-desc-of"

    def test_single_distinguished_edge(self):
        g = figure2_graph()
        with pytest.raises(QueryGraphError):
            g.distinguished("P1", "P2", "again")

    def test_body_predicates(self):
        g = figure2_graph()
        assert g.body_predicates() == {"descendant", "person"}

    def test_string_labels_parsed(self):
        g = QueryGraph()
        edge = g.edge("X", "Y", "(a | b)+")
        assert edge.pre == closure(rel("a") | rel("b"))


class TestValidation:
    def test_figure2_valid(self):
        figure2_graph().validate()

    def test_missing_distinguished(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        with pytest.raises(QueryGraphError):
            g.validate()

    def test_empty_pattern_rejected(self):
        g = QueryGraph()
        g.distinguished("X", "Y", "p")
        with pytest.raises(QueryGraphError):
            g.validate()

    def test_isolated_node_rejected(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.node("Lonely")
        g.distinguished("X", "Y", "p")
        with pytest.raises(QueryGraphError):
            g.validate()

    def test_annotation_counts_as_incidence(self):
        g = QueryGraph()
        g.edge("X", "Y", "e")
        g.annotate("Z", "person")
        g.distinguished("X", "Y", "p", extra=["Z"])
        g.validate()

    def test_closure_needs_equal_lengths(self):
        g = QueryGraph()
        g.edge(("X", "Y"), "Z", "sg+")
        g.distinguished(("X", "Y"), "Z", "p")
        with pytest.raises(QueryGraphError):
            g.validate()

    def test_composite_needs_singleton_nodes(self):
        g = QueryGraph()
        g.edge(("X", "Y"), ("U", "V"), seq("a", "b"))
        g.distinguished(("X", "Y"), ("U", "V"), "p")
        with pytest.raises(QueryGraphError):
            g.validate()

    def test_comparison_edge_needs_singletons(self):
        g = QueryGraph()
        g.edge(("X", "Y"), ("U", "V"), "<")
        g.distinguished(("X", "Y"), ("U", "V"), "p")
        with pytest.raises(QueryGraphError):
            g.validate()

    def test_ghost_variable_escape_across_edges(self):
        g = QueryGraph()
        # H is a ghost of the alternation but reused on another edge.
        g.edge("X", "Y", rel("a", "H") | rel("b"))
        g.edge("Y", "Z", rel("c", "H"))
        g.distinguished("X", "Z", "p")
        with pytest.raises(GhostVariableError):
            g.validate()

    def test_ghost_of_star_escapes(self):
        g = QueryGraph()
        g.edge("X", "Y", star(rel("m", "H")))
        g.edge("Y", "Z", rel("c", "H"))
        g.distinguished("X", "Z", "p")
        with pytest.raises(GhostVariableError):
            g.validate()

    def test_underscore_prevents_ghost(self):
        g = QueryGraph()
        g.edge("X", "Y", star(rel("father") | rel("mother", "_")))
        g.distinguished("X", "Y", "anc")
        g.validate()

    def test_shared_alternation_variable_not_ghost(self):
        g = QueryGraph()
        g.edge("X", "Y", rel("a", "H") | rel("b", "H"))
        g.edge("Y", "Z", rel("c", "H"))
        g.distinguished("X", "Z", "p")
        g.validate()


class TestGraphicalQuery:
    def test_idb_edb_partition(self):
        q = GraphicalQuery()
        g1 = q.define("F1", "F2", "feasible")
        g1.edge("F1", "F2", "leg")
        g2 = q.define("C1", "C2", "connected")
        g2.edge("C1", "C2", "feasible+")
        assert q.idb_predicates == {"feasible", "connected"}
        assert q.edb_predicates == {"leg"}

    def test_dependence_cycle_rejected(self):
        q = GraphicalQuery()
        g1 = q.define("X", "Y", "a")
        g1.edge("X", "Y", "b")
        g2 = q.define("X", "Y", "b")
        g2.edge("X", "Y", "a")
        with pytest.raises(DependenceCycleError):
            q.validate()

    def test_self_reference_rejected(self):
        q = GraphicalQuery()
        g = q.define("X", "Y", "p")
        g.edge("X", "Y", "p")
        with pytest.raises(DependenceCycleError):
            q.validate()

    def test_closure_of_defined_edge_still_acyclic(self):
        q = GraphicalQuery()
        g1 = q.define("X", "Y", "feasible")
        g1.edge("X", "Y", "leg")
        g2 = q.define("X", "Y", "conn")
        g2.edge("X", "Y", "feasible+")
        q.validate()

    def test_empty_query_rejected(self):
        with pytest.raises(QueryGraphError):
            GraphicalQuery().validate()

    def test_member_graphs_validated(self):
        q = GraphicalQuery()
        q.add(QueryGraph())  # no distinguished edge
        with pytest.raises(QueryGraphError):
            q.validate()
