"""Unit tests for the columnar int-encoded evaluation core."""

import pytest

from repro.datalog.columnar import (
    ColumnarRelation,
    EncodedDatabase,
    TermCatalog,
    encode_database,
)
from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.errors import EvaluationError


class TestTermCatalog:
    def test_intern_is_stable_and_dense(self):
        catalog = TermCatalog()
        a = catalog.intern("a")
        b = catalog.intern("b")
        assert catalog.intern("a") == a
        assert sorted({a, b}) == [0, 1]
        assert catalog.value(a) == "a"
        assert len(catalog) == 2

    def test_intern_follows_python_equality(self):
        # Native evaluation stores raw values in tuple sets, where 1, 1.0,
        # and True collide; the encoding must agree or results diverge.
        catalog = TermCatalog()
        assert catalog.intern(1) == catalog.intern(True) == catalog.intern(1.0)
        assert catalog.intern(0) == catalog.intern(False)
        assert catalog.intern("1") != catalog.intern(1)

    def test_decode_row_roundtrip(self):
        catalog = TermCatalog()
        row = ("x", 3, None)
        assert catalog.decode_row(catalog.intern_row(row)) == row


class TestColumnarRelation:
    def test_seed_dedupes_and_sorts(self):
        rel = ColumnarRelation("p", 2)
        assert rel.seed([(2, 1), (1, 2), (2, 1)]) == 2
        assert rel.rows == [(1, 2), (2, 1)]
        assert rel.run_lengths == [2]
        assert (1, 2) in rel

    def test_merge_run_appends_sorted_fresh_rows(self):
        rel = ColumnarRelation("p", 2)
        rel.seed([(1, 2)])
        fresh = rel.merge_run([(3, 4), (1, 2), (0, 0)])
        assert fresh == [(0, 0), (3, 4)]
        assert rel.run_lengths == [1, 2]
        assert len(rel) == 3
        assert rel.merge_run([(1, 2)]) == []

    def test_columns_are_fully_merged(self):
        from array import array

        rel = ColumnarRelation("p", 2)
        rel.seed([(5, 0), (1, 1)])
        rel.merge_run([(3, 7)])
        cols = rel.columns()
        assert [type(c) for c in cols] == [array, array]
        assert list(cols[0]) == [1, 3, 5]
        assert list(cols[1]) == [1, 7, 0]

    def test_index_extends_incrementally(self):
        rel = ColumnarRelation("p", 2)
        rel.seed([(1, 2), (1, 3)])
        assert rel.index((0,))[1] == [(1, 2), (1, 3)]
        rel.merge_run([(1, 4), (2, 9)])
        index = rel.index((0,))
        assert sorted(index[1]) == [(1, 2), (1, 3), (1, 4)]
        assert index[2] == [(2, 9)]
        # Multi-position keys are tuples.
        assert rel.index((0, 1))[(2, 9)] == [(2, 9)]

    def test_fork_is_independent(self):
        rel = ColumnarRelation("p", 1, sealed=True)
        rel.seed([(1,)])
        clone = rel.fork()
        clone.merge_run([(2,)])
        assert len(rel) == 1 and len(clone) == 2
        assert not clone.sealed


class TestEncoding:
    def test_encode_database_roundtrip(self):
        db = Database.from_facts({"e": [("a", "b"), ("b", "c")], "n": [("a",)]})
        encoded = EncodedDatabase.from_database(db)
        assert set(encoded.relations) == {"e", "n"}
        e = encoded.relations["e"]
        assert e.sealed and len(e) == 2
        decoded = {encoded.catalog.decode_row(row) for row in e.rows}
        assert decoded == {("a", "b"), ("b", "c")}

    def test_encode_cache_hits_until_mutation(self):
        db = Database.from_facts({"e": [("a", "b")]})
        first = encode_database(db)
        assert encode_database(db) is first
        db.add_fact("e", "b", "c")
        second = encode_database(db)
        assert second is not first
        assert encode_database(db) is second

    def test_discard_invalidates_cache(self):
        db = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        first = encode_database(db)
        db.relation("e").discard(("b", "c"))
        assert encode_database(db) is not first


class TestColumnarEngine:
    def test_engine_accepts_columnar_method(self):
        program = parse_program("tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).")
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        engine = Engine(method="columnar")
        result = engine.evaluate(program, edb)
        assert result.facts("tc") == {("a", "b"), ("b", "c"), ("a", "c")}
        assert engine.stats.facts_derived == 3
        assert engine.stats.strata == 1

    def test_columnar_rejects_provenance(self):
        with pytest.raises(ValueError):
            Engine(method="columnar", record_provenance=True)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            Engine(method="vectorized")

    def test_input_database_is_not_modified(self):
        program = parse_program("tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).")
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        Engine(method="columnar").evaluate(program, edb)
        assert "tc" not in edb.predicates

    def test_program_facts_and_constants(self):
        program = parse_program(
            """
            color("red").
            pair(X, "fixed") :- color(X).
            """
        )
        result = Engine(method="columnar").evaluate(program, Database())
        assert result.facts("pair") == {("red", "fixed")}

    def test_stratified_negation(self):
        program = parse_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), e(X,Y).
            dead(X) :- node(X), not reach(X).
            """
        )
        edb = Database.from_facts(
            {
                "start": [("a",)],
                "e": [("a", "b"), ("c", "d")],
                "node": [("a",), ("b",), ("c",), ("d",)],
            }
        )
        result = Engine(method="columnar").evaluate(program, edb)
        assert result.facts("dead") == {("c",), ("d",)}

    def test_arithmetic_error_parity(self):
        program = parse_program("bad(Y) :- n(X), Y = X / 0.")
        edb = Database.from_facts({"n": [(1,)]})
        with pytest.raises(EvaluationError):
            Engine(method="seminaive").evaluate(program, edb)
        with pytest.raises(EvaluationError):
            Engine(method="columnar").evaluate(program, edb)

    def test_shared_edb_is_encoded_once_across_queries(self):
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        program = parse_program("tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).")
        Engine(method="columnar").evaluate(program, edb)
        encoded = encode_database(edb)
        Engine(method="columnar").evaluate(program, edb)
        assert encode_database(edb) is encoded


class TestOldNewSplit:
    def _run(self, **kwargs):
        program = parse_program("p(X,Y) :- e(X,Y). p(X,Y) :- p(X,Z), p(Z,Y).")
        edb = Database.from_facts({"e": [(i, i + 1) for i in range(24)]})
        engine = Engine(method="seminaive", **kwargs)
        result = engine.evaluate(program, edb)
        return result, engine.stats

    def test_split_reduces_rederivation_with_equal_results(self):
        with_split, stats_on = self._run(old_new_split=True)
        without, stats_off = self._run(old_new_split=False)
        naive = Engine(method="naive").evaluate(
            parse_program("p(X,Y) :- e(X,Y). p(X,Y) :- p(X,Z), p(Z,Y)."),
            Database.from_facts({"e": [(i, i + 1) for i in range(24)]}),
        )
        assert with_split == without == naive
        assert stats_on.facts_derived == stats_off.facts_derived
        assert stats_on.rows_produced < stats_off.rows_produced

    def test_columnar_matches_nonlinear_recursion(self):
        program = parse_program("p(X,Y) :- e(X,Y). p(X,Y) :- p(X,Z), p(Z,Y).")
        edb = Database.from_facts({"e": [(i, i + 1) for i in range(24)]})
        native = Engine(method="seminaive").evaluate(program, edb)
        columnar = Engine(method="columnar").evaluate(program, edb)
        assert native == columnar
