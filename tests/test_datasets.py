"""Tests for dataset generators: determinism, schema, consistency."""

from repro.datasets.airlines import figure12_database, figure12_graph, random_airline_graph
from repro.datasets.family import (
    chain_family,
    example25_family,
    figure2_family,
    random_genealogy,
)
from repro.datasets.flights import figure1_database, figure1_graph, hhmm, random_flights
from repro.datasets.hypertext import hypertext_graph, random_hypertext
from repro.datasets.random_graphs import (
    chain_database,
    cycle_database,
    layered_dag,
    random_edge_relation,
    random_labeled_graph,
)
from repro.datasets.software import random_callgraph
from repro.datasets.tasks import figure11_database, random_project
from repro.graphs.algorithms import is_acyclic


class TestFlights:
    def test_hhmm(self):
        assert hhmm("21:45") == 21 * 60 + 45
        assert hhmm("00:05") == 5

    def test_figure1_schema(self):
        db = figure1_database()
        assert db.count("from") == db.count("to") == db.count("departure") == db.count("arrival")
        assert db.facts("capital") == {("ottawa",), ("washington",)}

    def test_flight_times_consistent(self):
        db = figure1_database()
        departures = dict(db.facts("departure"))
        arrivals = dict(db.facts("arrival"))
        for flight in departures:
            assert departures[flight] < arrivals[flight]

    def test_figure1_graph_encoding(self):
        g = figure1_graph()
        assert g.node_label("ottawa") == frozenset({"capital"})

    def test_random_flights_deterministic(self):
        a = random_flights(3, n_cities=5, n_flights=20)
        b = random_flights(3, n_cities=5, n_flights=20)
        assert a.to_dict() == b.to_dict()
        c = random_flights(4, n_cities=5, n_flights=20)
        assert a.to_dict() != c.to_dict()

    def test_random_flights_legs_positive(self):
        db = random_flights(1, n_flights=30)
        departures = dict(db.facts("departure"))
        arrivals = dict(db.facts("arrival"))
        assert all(arrivals[f] > departures[f] for f in departures)


class TestFamily:
    def test_figure2_people_cover_descendants(self):
        db = figure2_family()
        people = {p for (p,) in db.facts("person")}
        for a, b in db.facts("descendant"):
            assert a in people and b in people

    def test_example25_schema(self):
        db = example25_family()
        assert db.arity_of("mother") == 3
        assert db.arity_of("father") == 2

    def test_random_genealogy_layers(self):
        db = random_genealogy(7, generations=3, people_per_generation=4)
        assert db.count("person") == 12
        # parent edges only go one generation down: graph is acyclic
        adjacency = {}
        for a, b in db.facts("parent"):
            adjacency.setdefault(a, set()).add(b)
        assert is_acyclic(adjacency)

    def test_random_genealogy_deterministic(self):
        assert random_genealogy(1).to_dict() == random_genealogy(1).to_dict()

    def test_chain_family(self):
        db = chain_family(5)
        assert db.count("descendant") == 5
        assert db.count("person") == 6


class TestSoftware:
    def test_figure6_expected_answer(self):
        # The instance is constructed so only netd and buffers qualify.
        from repro.figures.fig06 import reproduce

        assert reproduce()["modules"] == ["buffers", "netd"]

    def test_random_callgraph_separates_local_external(self):
        db = random_callgraph(2)
        module_of = dict(db.facts("in-module"))
        for a, b in db.facts("calls-local"):
            assert module_of[a] == module_of[b]
        for a, b in db.facts("calls-extn"):
            assert module_of.get(a) != module_of.get(b)

    def test_random_callgraph_has_async_io(self):
        db = random_callgraph(2)
        assert any(lib == "async-io" for _f, lib in db.facts("in-library"))


class TestTasks:
    def test_figure11_consistent_schedule(self):
        db = figure11_database()
        starts = dict(db.facts("scheduled-start"))
        durations = dict(db.facts("duration"))
        for a, b in db.facts("affects"):
            assert starts[b] >= starts[a] + durations[a]

    def test_random_project_acyclic(self):
        db = random_project(5)
        adjacency = {}
        for a, b in db.facts("affects"):
            adjacency.setdefault(a, set()).add(b)
        assert is_acyclic(adjacency)

    def test_random_project_consistent(self):
        db = random_project(5)
        starts = dict(db.facts("scheduled-start"))
        durations = dict(db.facts("duration"))
        for a, b in db.facts("affects"):
            assert starts[b] >= starts[a] + durations[a]


class TestAirlines:
    def test_figure12_rt_scale_has_answers(self):
        from repro.figures.fig12 import rt_scale_cities

        scales = rt_scale_cities(figure12_graph())
        assert scales == {"geneva", "montreal", "toronto", "vancouver"}

    def test_database_form_matches_graph(self):
        db = figure12_database()
        g = figure12_graph()
        assert sum(db.count(p) for p in db.predicates) == g.edge_count()

    def test_random_airline_deterministic(self):
        assert random_airline_graph(9).edge_triples() == random_airline_graph(9).edge_triples()


class TestHypertext:
    def test_contains_and_next_shapes(self):
        db = random_hypertext(3, n_documents=2, sections_per_document=3)
        assert db.count("document") == 2
        assert db.count("card") == 6
        assert db.count("contains") == 6
        assert db.count("next") == 4  # (sections-1) per document

    def test_graph_form(self):
        g = hypertext_graph(seed=3, n_documents=2, sections_per_document=3)
        assert g.node_count() >= 8


class TestRandomGraphs:
    def test_chain(self):
        db = chain_database(4)
        assert db.count("edge") == 4
        assert db.count("node") == 5

    def test_cycle(self):
        db = cycle_database(4)
        assert db.count("edge") == 4

    def test_layered_dag_acyclic(self):
        db = layered_dag(1, layers=4, width=3)
        adjacency = {}
        for a, b in db.facts("edge"):
            adjacency.setdefault(a, set()).add(b)
        assert is_acyclic(adjacency)

    def test_random_edge_relation_distinct(self):
        db = random_edge_relation(1, 10, 30)
        assert db.count("edge") == 30
        assert all(a != b for a, b in db.facts("edge"))

    def test_random_labeled_graph(self):
        g = random_labeled_graph(1, 10, 25, labels=("a", "b"))
        assert g.edge_count() == 25
        assert g.labels() <= {"a", "b"}
