"""Tests for serialization (Datalog text and JSON graphs)."""

import json

import pytest

from repro.datalog.database import Database
from repro.datasets.flights import figure1_database, figure1_graph
from repro.graphs.bridge import EdgeLabel
from repro.graphs.multigraph import LabeledMultigraph
from repro.io import (
    SerializationError,
    database_from_source,
    database_to_source,
    graph_from_json,
    graph_to_json,
    load_database,
    load_graph,
    save_database,
    save_graph,
)


class TestDatalogText:
    def test_roundtrip_simple(self):
        db = Database.from_facts(
            {"parent": [("ann", "bob")], "age": [("ann", 41)], "pi": [(3.5,)]}
        )
        assert database_from_source(database_to_source(db)) == db

    def test_roundtrip_figure1(self):
        db = figure1_database()
        assert database_from_source(database_to_source(db)) == db

    def test_strings_needing_quotes(self):
        db = Database.from_facts({"name": [("New York",), ("o'hare",)]})
        assert database_from_source(database_to_source(db)) == db

    def test_hyphenated_values_bare(self):
        db = Database.from_facts({"lib": [("async-io",)]})
        text = database_to_source(db)
        assert "'" not in text
        assert database_from_source(text) == db

    def test_deterministic_output(self):
        db = Database.from_facts({"e": [("b", "c"), ("a", "b")]})
        assert database_to_source(db) == database_to_source(db.copy())
        assert database_to_source(db).index("e(a, b).") < database_to_source(db).index("e(b, c).")

    def test_rules_rejected_on_load(self):
        with pytest.raises(SerializationError):
            database_from_source("p(X) :- q(X).")

    def test_unserializable_value(self):
        db = Database.from_facts({"p": [(None,)]})
        with pytest.raises(SerializationError):
            database_to_source(db)

    def test_file_helpers(self, tmp_path):
        db = figure1_database()
        path = save_database(db, tmp_path / "flights.dl")
        assert load_database(path) == db

    def test_empty_database(self):
        assert database_to_source(Database()) == ""
        assert database_from_source("") == Database()


class TestJsonGraphs:
    def test_roundtrip_plain_labels(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "CP")
        g.add_edge("a", "b", "CP")  # parallel edge survives
        assert graph_from_json(graph_to_json(g)).edge_count() == 2

    def test_roundtrip_edge_labels_and_annotations(self):
        g = figure1_graph()
        back = graph_from_json(graph_to_json(g))
        assert back == g
        assert back.node_label("ottawa") == frozenset({"capital"})

    def test_tuple_nodes(self):
        g = LabeledMultigraph()
        g.add_edge(("a", "b"), ("c", "d"), EdgeLabel("sg"))
        back = graph_from_json(graph_to_json(g))
        assert back.has_edge(("a", "b"), ("c", "d"), EdgeLabel("sg"))

    def test_json_serializable(self):
        g = figure1_graph()
        text = json.dumps(graph_to_json(g))
        assert graph_from_json(json.loads(text)) == g

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_json({"format": "something-else"})

    def test_exotic_values_rejected(self):
        g = LabeledMultigraph()
        g.add_edge(object(), "b", "x")
        with pytest.raises(SerializationError):
            graph_to_json(g)

    def test_file_helpers(self, tmp_path):
        g = figure1_graph()
        path = save_graph(g, tmp_path / "flights.json")
        assert load_graph(path) == g

    def test_isolated_annotated_node(self):
        g = LabeledMultigraph()
        g.add_node("solo", frozenset({"vip"}))
        back = graph_from_json(graph_to_json(g))
        assert back.node_label("solo") == frozenset({"vip"})


class TestScalarRoundTrips:
    """Non-string scalars must survive JSON round trips with type intact."""

    def test_scalar_node_values(self):
        g = LabeledMultigraph()
        for node in (7, 2.5, True, False, None, "plain"):
            g.add_node(node, None)
        back = graph_from_json(graph_to_json(g))
        assert back == g
        for node in (7, 2.5, True, False, None, "plain"):
            assert back.has_node(node)

    def test_scalar_edge_label_values(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", 42)
        g.add_edge("a", "b", 2.5)
        g.add_edge("a", "b", True)
        g.add_edge("a", "b", None)
        back = graph_from_json(graph_to_json(g))
        assert back == g
        for label in (42, 2.5, True, None):
            assert back.has_edge("a", "b", label)

    def test_scalar_types_preserved(self):
        # Round-tripped values must come back with the same Python type,
        # not a JSON look-alike (2.0 for 2, "true" for True, ...).
        g = LabeledMultigraph()
        g.add_node(7, 2.5)
        back = graph_from_json(json.loads(json.dumps(graph_to_json(g))))
        (node,) = back.nodes
        assert type(node) is int
        assert type(back.node_label(7)) is float

    def test_edge_label_extras_with_mixed_scalars(self):
        g = LabeledMultigraph()
        g.add_edge("x", "y", EdgeLabel("flight", ("21:45", 930, 2.5, True, None)))
        back = graph_from_json(graph_to_json(g))
        assert back == g

    def test_empty_graph_round_trip(self):
        g = LabeledMultigraph()
        back = graph_from_json(json.loads(json.dumps(graph_to_json(g))))
        assert back == g
        assert back.node_count() == 0 and back.edge_count() == 0


class TestDeltaSerde:
    """Delta objects survive the WAL serde with structural equality."""

    def build_delta(self):
        from repro.ham.delta import compute_delta
        from repro.ham.store import _Op

        g = LabeledMultigraph()
        g.add_edge("a", "b", EdgeLabel("link"))
        g.add_node("old", frozenset({"stale"}))
        ops = [
            _Op(_Op.REMOVE_EDGE, "a", "b", EdgeLabel("link")),
            _Op(_Op.REMOVE_NODE, "old"),
            _Op(_Op.ADD_EDGE, ("t", 1), ("t", 2), EdgeLabel("flight", (930, True))),
            _Op(_Op.ADD_NODE, "fresh", frozenset({"new"})),
        ]
        return compute_delta(g, ops)

    def test_round_trip_equality(self):
        from repro.persist import delta_from_json, delta_to_json

        delta = self.build_delta()
        back = delta_from_json(json.loads(json.dumps(delta_to_json(delta))))
        assert back == delta
        assert back.insertions == delta.insertions
        assert back.deletions == delta.deletions

    def test_equality_is_structural(self):
        assert self.build_delta() == self.build_delta()
        from repro.persist import delta_from_json, delta_to_json

        other = delta_from_json(delta_to_json(self.build_delta()))
        assert other is not self.build_delta()
        assert other == self.build_delta()
