"""Histogram merge edge cases: the cluster aggregate's correctness rests on
merged histograms answering the same quantiles the pooled samples would.
Covers empty merges, the typed mismatch error, wire round-trips (the form
``cluster_stats`` ships across nodes), and a merged-vs-pooled property."""

import random

import pytest

from repro.obs.metrics import HistogramData, HistogramMergeError


class TestEmptyMerges:
    def test_two_empty(self):
        a = HistogramData()
        a.merge(HistogramData())
        assert a.count == 0
        assert a.quantile(0.5) is None
        assert a.min is None and a.max is None

    def test_empty_into_populated(self):
        a = HistogramData()
        a.observe(0.01)
        a.observe(0.02)
        before = (a.count, a.sum, a.min, a.max, list(a.counts))
        a.merge(HistogramData())
        assert (a.count, a.sum, a.min, a.max, list(a.counts)) == before

    def test_populated_into_empty(self):
        b = HistogramData()
        b.observe(0.01)
        b.observe(0.5)
        a = HistogramData()
        a.merge(b)
        assert a.count == 2
        assert a.min == 0.01
        assert a.max == 0.5


class TestMismatchedLayouts:
    def test_typed_error(self):
        a = HistogramData(bounds=(0.1, 1.0))
        b = HistogramData(bounds=(0.1, 1.0, 10.0))
        with pytest.raises(HistogramMergeError):
            a.merge(b)

    def test_error_is_a_value_error(self):
        # Pre-existing broad ``except ValueError`` callers keep working.
        assert issubclass(HistogramMergeError, ValueError)
        a = HistogramData(bounds=(0.1,))
        with pytest.raises(ValueError):
            a.merge(HistogramData(bounds=(0.2,)))

    def test_failed_merge_leaves_target_untouched(self):
        a = HistogramData(bounds=(0.1, 1.0))
        a.observe(0.05)
        with pytest.raises(HistogramMergeError):
            a.merge(HistogramData(bounds=(0.5,)))
        assert a.count == 1
        assert a.counts[0] == 1


class TestWireForm:
    def test_round_trip(self):
        a = HistogramData()
        for value in (0.001, 0.01, 0.25, 3.0):
            a.observe(value)
        b = HistogramData.from_wire(a.to_wire())
        assert b.bounds == a.bounds
        assert b.counts == a.counts
        assert b.count == a.count
        assert b.sum == pytest.approx(a.sum)
        assert b.min == a.min and b.max == a.max
        for q in (0.5, 0.95, 0.99):
            assert b.quantile(q) == pytest.approx(a.quantile(q))

    def test_merge_after_round_trip(self):
        a = HistogramData()
        a.observe(0.02)
        b = HistogramData.from_wire(a.to_wire())
        b.merge(a)
        assert b.count == 2

    @pytest.mark.parametrize(
        "doc",
        [
            "nope",
            {},
            {"bounds": [0.1]},  # missing counts
            {"bounds": [0.1], "counts": [1]},  # wrong counts length
            {"bounds": "bad", "counts": [1, 2]},
            {"bounds": [0.1], "counts": [1, "x"], "count": 1, "sum": 0.1},
        ],
    )
    def test_malformed_wire_rejected(self, doc):
        with pytest.raises(HistogramMergeError):
            HistogramData.from_wire(doc)


class TestMergedEqualsPooled:
    def test_merged_quantiles_match_pooled(self):
        """Fold N per-node histograms together: every quantile must equal the
        one histogram that saw all samples (the whole point of shipping
        histograms instead of per-node quantiles)."""
        rng = random.Random(7)
        pooled = HistogramData()
        merged = None
        for _node in range(5):
            local = HistogramData()
            for _ in range(200):
                value = rng.expovariate(1 / 0.05)  # latency-shaped
                local.observe(value)
                pooled.observe(value)
            shipped = HistogramData.from_wire(local.to_wire())
            if merged is None:
                merged = shipped
            else:
                merged.merge(shipped)
        assert merged.count == pooled.count
        assert merged.sum == pytest.approx(pooled.sum)
        assert merged.min == pooled.min and merged.max == pooled.max
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            assert merged.quantile(q) == pytest.approx(pooled.quantile(q))
