"""Property-based tests (hypothesis) for core data structures and invariants."""


from hypothesis import given, settings, strategies as st

from repro.aggregation.summarize import summarize_paths
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.graphs.closure import closure_methods, transitive_closure
from repro.rpq.automaton import compile_regex, determinize, minimize, thompson
from repro.rpq.regex import Concat, Epsilon, Opt, Plus, Star, Sym, Union
from repro.translation.differential import (
    check_equivalence,
    random_database,
    random_sl_program,
)
from repro.datalog.classify import is_stratified_linear, is_stratified_tc_program
from repro.translation.sl_to_stc import sl_to_stc

# ------------------------------------------------------------ graph inputs

nodes = st.integers(min_value=0, max_value=9)
edge_sets = st.sets(st.tuples(nodes, nodes), max_size=25)


@given(edge_sets)
@settings(max_examples=60, deadline=None)
def test_closure_kernels_agree(pairs):
    results = [transitive_closure(pairs, method) for method in closure_methods()]
    assert all(result == results[0] for result in results)


@given(edge_sets)
@settings(max_examples=40, deadline=None)
def test_closure_is_transitive_and_contains_base(pairs):
    closure = transitive_closure(pairs)
    assert pairs <= closure
    index = {}
    for a, b in closure:
        index.setdefault(a, set()).add(b)
    for a, b in closure:
        for c in index.get(b, ()):
            assert (a, c) in closure


@given(edge_sets)
@settings(max_examples=40, deadline=None)
def test_closure_idempotent(pairs):
    once = transitive_closure(pairs)
    assert transitive_closure(once) == once


@given(edge_sets)
@settings(max_examples=30, deadline=None)
def test_datalog_tc_matches_kernel(pairs):
    program = parse_program(
        """
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        """
    )
    db = Database()
    db.add_facts("e", pairs)
    result = evaluate(program, db)
    assert set(result.facts("tc")) == transitive_closure(pairs)


@given(edge_sets)
@settings(max_examples=25, deadline=None)
def test_naive_equals_seminaive(pairs):
    program = parse_program(
        """
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        n(X) :- e(X, _).
        n(X) :- e(_, X).
        un(X, Y) :- n(X), n(Y), not tc(X, Y).
        """
    )
    db = Database()
    db.add_facts("e", pairs)
    assert evaluate(program, db, "naive").to_dict() == evaluate(program, db, "seminaive").to_dict()


# ------------------------------------------------------------- regex inputs

symbols = st.sampled_from("abc")


def regexes(depth=3):
    base = st.one_of(symbols.map(Sym), st.just(Epsilon()))
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda t: Concat(*t)),
            st.tuples(inner, inner).map(lambda t: Union(*t)),
            inner.map(Star),
            inner.map(Plus),
            inner.map(Opt),
        ),
        max_leaves=8,
    )


def _brute_force_accepts(regex, word):
    """Direct recursive matcher used as the oracle."""
    if isinstance(regex, Sym):
        return len(word) == 1 and word[0] == regex.label
    if isinstance(regex, Epsilon):
        return not word
    if isinstance(regex, Concat):
        return any(
            _brute_force_accepts(regex.left, word[:i])
            and _brute_force_accepts(regex.right, word[i:])
            for i in range(len(word) + 1)
        )
    if isinstance(regex, Union):
        return _brute_force_accepts(regex.left, word) or _brute_force_accepts(
            regex.right, word
        )
    if isinstance(regex, Opt):
        return not word or _brute_force_accepts(regex.inner, word)
    if isinstance(regex, (Star, Plus)):
        if not word:
            # Star always accepts epsilon; Plus does iff its body is nullable.
            return isinstance(regex, Star) or _brute_force_accepts(regex.inner, ())
        return any(
            i > 0
            and _brute_force_accepts(regex.inner, word[:i])
            and _brute_force_accepts(Star(regex.inner), word[i:])
            for i in range(1, len(word) + 1)
        )
    raise AssertionError(regex)


@given(regexes(), st.lists(symbols, max_size=5))
@settings(max_examples=120, deadline=None)
def test_dfa_matches_brute_force(regex, word):
    dfa = compile_regex(regex)
    expected = _brute_force_accepts(regex, tuple(word))
    assert dfa.accepts([(c, False) for c in word]) == expected


@given(regexes(), st.lists(symbols, max_size=5))
@settings(max_examples=80, deadline=None)
def test_minimization_preserves_acceptance(regex, word):
    big = determinize(thompson(regex))
    small = minimize(big)
    symbols_word = [(c, False) for c in word]
    assert big.accepts(symbols_word) == small.accepts(symbols_word)
    assert small.n_states <= big.n_states


# --------------------------------------------- Algorithm 3.1 (Theorem 3.2)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_algorithm31_equivalence_random_programs(seed):
    program = random_sl_program(seed)
    assert is_stratified_linear(program)
    translation = sl_to_stc(program, use_predicate_name_signatures=False)
    assert is_stratified_tc_program(translation.program)
    arities = {p: program.arity_of(p) for p in program.edb_predicates}
    db = random_database(seed + 1, arities, domain_size=5, facts_per_predicate=6)
    equal, diffs = check_equivalence(program, db, translation=translation)
    assert equal, diffs


# ------------------------------------------------------- path summarization


weighted_dag_edges = st.lists(
    st.tuples(nodes, nodes, st.integers(min_value=0, max_value=9)),
    max_size=15,
).map(lambda edges: [(a, b, w) for a, b, w in edges if a < b])  # a<b forces a DAG


@given(weighted_dag_edges)
@settings(max_examples=40, deadline=None)
def test_shortest_le_longest_on_dags(edges):
    shortest = summarize_paths(edges, "shortest")
    longest = summarize_paths(edges, "longest")
    assert set(shortest) == set(longest)
    for pair, value in shortest.items():
        assert value <= longest[pair]


@given(weighted_dag_edges)
@settings(max_examples=40, deadline=None)
def test_summaries_cover_exactly_reachable_pairs(edges):
    reach = transitive_closure({(a, b) for a, b, _w in edges})
    table = summarize_paths(edges, "shortest")
    assert set(table) == reach


@given(weighted_dag_edges)
@settings(max_examples=30, deadline=None)
def test_shortest_triangle_inequality(edges):
    table = summarize_paths(edges, "shortest")
    for (a, b), ab in table.items():
        for (b2, c), bc in table.items():
            if b2 == b:
                assert table[(a, c)] <= ab + bc + 1e-9


# -------------------------------------------------- magic sets (abl4 claim)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=3))
@settings(max_examples=20, deadline=None)
def test_magic_sets_match_full_on_random_positive_programs(seed, goal_choice):
    from repro.datalog.engine import Engine
    from repro.datalog.magic import magic_answers
    from repro.datalog.ast import Atom
    from repro.datalog.terms import Constant, Variable

    program = random_sl_program(seed, negation=False)
    arities = {p: program.arity_of(p) for p in program.edb_predicates}
    db = random_database(seed + 13, arities, domain_size=5, facts_per_predicate=6)
    predicate = sorted(program.idb_predicates)[goal_choice % len(program.idb_predicates)]
    arity = program.arity_of(predicate)
    domain_value = sorted(db.active_domain(), key=str)[0]
    # Bind the first argument half the time; leave all free otherwise.
    if goal_choice % 2 == 0 and arity >= 1:
        args = [Constant(domain_value)] + [Variable(f"G{i}") for i in range(arity - 1)]
    else:
        args = [Variable(f"G{i}") for i in range(arity)]
    goal = Atom(predicate, args)
    assert magic_answers(program, db, goal) == Engine().query(program, db, goal)


# ------------------------------------------------------- optimizer soundness


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_optimizer_preserves_random_programs(seed):
    from repro.datalog.optimize import optimize

    program = random_sl_program(seed)
    roots = sorted(program.idb_predicates)
    optimized = optimize(program, roots=roots)
    arities = {p: program.arity_of(p) for p in program.edb_predicates}
    db = random_database(seed + 29, arities, domain_size=5, facts_per_predicate=6)
    full = evaluate(program, db)
    opt = evaluate(optimized, db)
    for predicate in roots:
        assert full.facts(predicate) == opt.facts(predicate)


# ----------------------------------------------------- DSL round-trip (text)


_pre_texts = st.sampled_from(
    [
        "a+",
        "a*",
        "a?",
        "a b",
        "(a | b)+",
        "-a b",
        "a (b | c)*",
        "~a+",
        "mother(_) father",
        "r(X)+",
    ]
)


@given(_pre_texts)
@settings(max_examples=30, deadline=None)
def test_dsl_roundtrip_through_render(pre_text):
    from repro.core.dsl import parse_graphical_query
    from repro.visual.ascii_art import render_graphical_query

    source = f"define (S) -[out]-> (T) {{ (S) -[{pre_text}]-> (T); }}"
    query = parse_graphical_query(source)
    rendered = render_graphical_query(query)
    reparsed = parse_graphical_query(rendered)
    assert reparsed.graphs[0].edges[0].pre == query.graphs[0].edges[0].pre


# ------------------------------------------------- incremental maintenance


@given(
    st.lists(st.tuples(nodes, nodes), min_size=1, max_size=12),
    st.lists(st.tuples(nodes, nodes), min_size=1, max_size=4),
)
@settings(max_examples=30, deadline=None)
def test_incremental_insert_matches_recompute(base_edges, new_edges):
    from repro.ham.views import incremental_insert

    base_edges = [(a, b) for a, b in base_edges if a != b]
    new_edges = [(a, b) for a, b in new_edges if a != b]
    program = parse_program(
        """
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        """
    )
    db = Database()
    db.relation("e", 2)
    db.add_facts("e", base_edges)
    materialized = evaluate(program, db)
    updated = incremental_insert(program, materialized, {"e": new_edges})
    full_db = Database()
    full_db.relation("e", 2)
    full_db.add_facts("e", base_edges + new_edges)
    assert updated.facts("tc") == evaluate(program, full_db).facts("tc")
