"""Randomized differential tests over the four transitive-closure kernels.

Every kernel in :mod:`repro.graphs.closure` must compute the same relation;
any disagreement on any input is a bug in at least one of them.  Random
graphs are drawn from seeded generators so failures replay exactly, and a
dead-simple per-source BFS serves as the independent reference.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.graphs.closure import closure_methods, transitive_closure

KERNELS = closure_methods()

TC_PROGRAM = parse_program(
    "tc(X,Y) :- edge(X,Y).\ntc(X,Y) :- edge(X,Z), tc(Z,Y)."
)


def bfs_reference(pairs):
    """Per-source BFS: the obviously-correct O(V·E) reference closure."""
    successors = {}
    for source, target in pairs:
        successors.setdefault(source, set()).add(target)
    closure = set()
    for start in successors:
        frontier = [start]
        seen = set()
        while frontier:
            node = frontier.pop()
            for nxt in successors.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        closure.update((start, node) for node in seen)
    return closure


def random_graph(rng, nodes, density, dag=False, self_loops=False):
    pairs = set()
    for source in range(nodes):
        for target in range(nodes):
            if source == target and not self_loops:
                continue
            if dag and source >= target:
                continue
            if rng.random() < density:
                pairs.add((source, target))
    return pairs


def assert_all_kernels_agree(pairs):
    expected = bfs_reference(pairs)
    for method in KERNELS:
        assert transitive_closure(pairs, method=method) == expected, method
    # The engine backends must agree with the closure kernels too: the same
    # TC program through the native walker and the columnar kernels.
    edb = Database.from_facts({"edge": pairs})
    for method in ("seminaive", "columnar"):
        result = Engine(method=method).evaluate(TC_PROGRAM, edb)
        assert result.facts("tc") == expected, method


def test_kernel_registry_is_complete():
    assert set(KERNELS) == {"naive", "seminaive", "warshall", "squaring"}


def test_empty_graph():
    for method in KERNELS:
        assert transitive_closure(set(), method=method) == set()


def test_single_self_loop():
    assert_all_kernels_agree({("a", "a")})


def test_two_cycle():
    assert_all_kernels_agree({("a", "b"), ("b", "a")})


@pytest.mark.parametrize("seed", range(8))
def test_random_cyclic_graphs(seed):
    rng = random.Random(seed)
    nodes = rng.randint(2, 14)
    pairs = random_graph(rng, nodes, density=rng.uniform(0.05, 0.4))
    assert_all_kernels_agree(pairs)


@pytest.mark.parametrize("seed", range(100, 106))
def test_random_dags(seed):
    rng = random.Random(seed)
    nodes = rng.randint(2, 14)
    pairs = random_graph(rng, nodes, density=rng.uniform(0.1, 0.5), dag=True)
    assert_all_kernels_agree(pairs)


@pytest.mark.parametrize("seed", range(200, 206))
def test_random_graphs_with_self_loops(seed):
    rng = random.Random(seed)
    nodes = rng.randint(1, 10)
    pairs = random_graph(
        rng, nodes, density=rng.uniform(0.1, 0.5), self_loops=True
    )
    assert_all_kernels_agree(pairs)


def test_disconnected_components():
    pairs = {("a", "b"), ("b", "a"), ("x", "y"), ("y", "z")}
    assert_all_kernels_agree(pairs)
    closure = transitive_closure(pairs)
    assert ("a", "z") not in closure and ("x", "a") not in closure
