"""Cross-module integration tests: full pipelines spanning the library."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine, prepare_database
from repro.core.translate import translate
from repro.datalog.classify import is_stratified_linear, is_stratified_tc_program
from repro.datalog.engine import evaluate
from repro.datasets.family import figure2_family, random_genealogy
from repro.datasets.flights import figure1_database, random_flights
from repro.datasets.random_graphs import random_labeled_graph
from repro.fo_tc.evaluate import Structure, answers as fo_answers
from repro.fo_tc.from_stc import stc_to_tc
from repro.graphs.bridge import database_from_graph, graph_from_database
from repro.ham.store import HAMStore
from repro.rpq.evaluate import RPQEvaluator
from repro.translation.differential import check_equivalence
from repro.translation.sl_to_stc import prepare_adom, sl_to_stc


class TestTheorem33Pipeline:
    """GraphLog -> SL-DATALOG -> STC-DATALOG -> TC on one query (Theorem 3.3)."""

    QUERY = """
    define (P1) -[not-desc-of(P2)]-> (P3) {
        (P1) -[descendant+]-> (P3);
        (P2) -[~descendant+]-> (P3);
        person(P2);
    }
    """

    @pytest.fixture
    def database(self):
        return prepare_database(figure2_family())

    def test_all_four_formalisms_agree(self, database):
        query = parse_graphical_query(self.QUERY)
        # Stage 0: GraphLog evaluation.
        graphlog = GraphLogEngine().answers(query, database, "not-desc-of")
        # Stage 1: λ translation into SL-DATALOG.
        sl = translate(query)
        assert is_stratified_linear(sl)
        sl_answers = set(evaluate(sl, database).facts("not-desc-of"))
        assert sl_answers == graphlog
        # Stage 2: Algorithm 3.1 into STC-DATALOG.
        stc = sl_to_stc(sl, use_predicate_name_signatures=False)
        assert is_stratified_tc_program(stc.program)
        stc_answers = set(
            evaluate(stc.program, prepare_adom(database)).facts("not-desc-of")
        )
        assert stc_answers == graphlog
        # Stage 3: TC formula.
        queries = stc_to_tc(sl)
        tc_query = queries["not-desc-of"]
        structure = Structure.from_database(database)
        tc_answers = fo_answers(tc_query.formula, structure, tc_query.parameters)
        assert tc_answers == graphlog

    def test_pipeline_on_random_genealogies(self):
        query = parse_graphical_query(self.QUERY)
        for seed in range(3):
            database = prepare_database(
                random_genealogy(seed, generations=3, people_per_generation=4)
            )
            graphlog = GraphLogEngine().answers(query, database, "not-desc-of")
            sl = translate(query)
            equal, diffs = check_equivalence(sl, database)
            assert equal, (seed, diffs)
            sl_answers = set(evaluate(sl, database).facts("not-desc-of"))
            assert sl_answers == graphlog


class TestRPQAgainstDatalog:
    """The automaton evaluator and the λ-translated Datalog program agree."""

    @pytest.mark.parametrize(
        "pre_text,regex_text",
        [
            ("a+", "a+"),
            ("a b", "a b"),
            ("(a | b)+", "(a | b)+"),
            ("a* b", "a* b"),
            ("-a b", "-a b"),
            ("(a | b)* c?", "(a | b)* c?"),
        ],
    )
    def test_same_pairs(self, pre_text, regex_text):
        graph = random_labeled_graph(13, 12, 30, labels=("a", "b", "c"))
        query = parse_graphical_query(
            f"define (X) -[out]-> (Y) {{ (X) -[{pre_text}]-> (Y); }}"
        )
        database = database_from_graph(graph)
        datalog_pairs = GraphLogEngine().answers(query, database, "out")
        rpq_pairs = RPQEvaluator(graph).pairs(regex_text)
        # The Datalog star/optional include only active-domain nodes; the
        # RPQ side ranges over graph nodes — identical here by construction.
        assert datalog_pairs == rpq_pairs


class TestFlightsEndToEnd:
    def test_fig4_on_random_schedule(self):
        query = parse_graphical_query(
            """
            define (F1) -[feasible]-> (F2) {
                (F1) -[to]-> (C);
                (C) <-[from]- (F2);
                (F1) -[arrival]-> (TA);
                (F2) -[departure]-> (TD);
                (TA) -[<]-> (TD);
            }
            define (C1) -[stop-connected]-> (C2) {
                (C1) <-[from]- (F1);
                (F1) -[feasible+]-> (F2);
                (F2) -[to]-> (C2);
            }
            """
        )
        db = random_flights(42, n_cities=8, n_flights=40)
        result = GraphLogEngine().run(query, db)
        feasible = result.facts("feasible")
        departures = dict(db.facts("departure"))
        arrivals = dict(db.facts("arrival"))
        for f1, f2 in feasible:
            assert arrivals[f1] < departures[f2]
        # stop-connected ⊆ (cities x cities)
        cities = {c for _f, c in db.facts("from")} | {c for _f, c in db.facts("to")}
        for c1, c2 in result.facts("stop-connected"):
            assert c1 in cities and c2 in cities


class TestHAMWorkflow:
    def test_store_query_edit_requery(self):
        store = HAMStore()
        store.load_database(figure1_database())
        query = parse_graphical_query(
            """
            define (C1) -[linked]-> (C2) {
                (C1) <-[from]- (F);
                (F) -[to]-> (C2);
            }
            """
        )
        before = store.answers(query, "linked")
        assert ("toronto", "ottawa") in before
        # Add a direct toronto -> washington flight inside a transaction.
        from repro.graphs.bridge import EdgeLabel

        session = store.session()
        with session.transaction() as txn:
            txn.add_node(99)
            txn.add_edge(99, "toronto", EdgeLabel("from"))
            txn.add_edge(99, "washington", EdgeLabel("to"))
        after = store.answers(query, "linked")
        assert ("toronto", "washington") in after
        assert len(after) == len(before) + 1

    def test_graph_roundtrip_through_store(self):
        db = figure1_database()
        store = HAMStore()
        store.load_database(db)
        back = database_from_graph(store.graph)
        assert back == db


class TestGraphRelationalDuality:
    def test_query_same_on_both_representations(self):
        db = figure2_family()
        graph = graph_from_database(db)
        query = parse_graphical_query(
            """
            define (X) -[line]-> (Y) {
                (X) -[descendant+]-> (Y);
            }
            """
        )
        engine = GraphLogEngine()
        assert engine.answers(query, db, "line") == engine.answers(query, graph, "line")
