"""End-to-end tests for the GraphLog evaluation engine."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine, answers, prepare_database, run
from repro.datalog.database import Database
from repro.datasets.family import figure2_family
from repro.graphs.bridge import graph_from_database


FIG2 = """
define (P1) -[not-desc-of(P2)]-> (P3) {
    (P1) -[descendant+]-> (P3);
    (P2) -[~descendant+]-> (P3);
    person(P2);
}
"""


@pytest.fixture
def fig2_query():
    return parse_graphical_query(FIG2)


@pytest.fixture
def family():
    return figure2_family()


class TestRun:
    def test_answers(self, fig2_query, family):
        result = answers(fig2_query, family, "not-desc-of")
        assert ("adam", "beth", "gina") in result
        assert ("adam", "beth", "adam") not in result  # beth descends from adam

    def test_run_returns_all_relations(self, fig2_query, family):
        db = run(fig2_query, family)
        assert db.facts("descendant-tc")
        assert db.facts("not-desc-of")

    def test_default_predicate_is_last_graph(self, family):
        q = parse_graphical_query(
            FIG2
            + """
            define (X) -[desc]-> (Y) {
                (X) -[descendant+]-> (Y);
            }
            """
        )
        result = GraphLogEngine().answers(q, family)
        assert all(len(t) == 2 for t in result)

    def test_naive_matches_seminaive(self, fig2_query, family):
        fast = GraphLogEngine(method="seminaive").answers(fig2_query, family, "not-desc-of")
        slow = GraphLogEngine(method="naive").answers(fig2_query, family, "not-desc-of")
        assert fast == slow

    def test_accepts_multigraph_input(self, fig2_query, family):
        graph = graph_from_database(family)
        via_graph = GraphLogEngine().answers(fig2_query, graph, "not-desc-of")
        via_db = GraphLogEngine().answers(fig2_query, family, "not-desc-of")
        assert via_graph == via_db

    def test_match_goal(self, fig2_query, family):
        engine = GraphLogEngine()
        result = engine.match(fig2_query, family, "not-desc-of(adam, X, gina)")
        assert {x for (x,) in result} == {"beth", "carl", "dora", "evan", "fern"}

    def test_input_database_not_mutated(self, fig2_query, family):
        before = family.to_dict()
        GraphLogEngine().answers(fig2_query, family, "not-desc-of")
        assert family.to_dict() == before

    def test_rejects_wrong_types(self):
        with pytest.raises(TypeError):
            GraphLogEngine().run("not a query", Database())
        q = parse_graphical_query(FIG2)
        with pytest.raises(TypeError):
            GraphLogEngine().run(q, "not a database")


class TestPrepareDatabase:
    def test_node_relation_added(self, family):
        prepared = prepare_database(family)
        assert prepared.count("node") == len(family.active_domain())

    def test_original_untouched(self, family):
        prepare_database(family)
        assert "node" not in family

    def test_custom_domain_predicate(self, family):
        prepared = prepare_database(family, domain_predicate="dom")
        assert prepared.count("dom") > 0


class TestClosureKernelOption:
    @pytest.mark.parametrize("kernel", ["seminaive", "warshall", "squaring", "naive"])
    def test_kernels_match_datalog_path(self, fig2_query, family, kernel):
        plain = GraphLogEngine().answers(fig2_query, family, "not-desc-of")
        accelerated = GraphLogEngine(closure_kernel=kernel).answers(
            fig2_query, family, "not-desc-of"
        )
        assert plain == accelerated

    def test_kernel_skips_non_binary_closures(self, family):
        # Closure with a label variable is not a plain binary TC; the kernel
        # path must leave it to the Datalog engine and still be correct.
        q = parse_graphical_query(
            """
            define (X) -[same-line(L)]-> (Y) {
                (X) -[ride(L)+]-> (Y);
            }
            """
        )
        db = Database.from_facts(
            {"ride": [("a", "b", "red"), ("b", "c", "red"), ("c", "d", "blue")]}
        )
        plain = GraphLogEngine().answers(q, db, "same-line")
        accelerated = GraphLogEngine(closure_kernel="warshall").answers(q, db, "same-line")
        assert plain == accelerated
        assert ("a", "c", "red") in plain


class TestOptimizeOption:
    @pytest.mark.parametrize("source,facts", [
        (
            "define (X) -[out]-> (Y) { (X) -[a b c]-> (Y); }",
            {"a": [("1", "2")], "b": [("2", "3")], "c": [("3", "4")]},
        ),
        (
            FIG2,
            None,  # use the family fixture shape inline below
        ),
    ])
    def test_optimized_engine_matches(self, source, facts):
        query = parse_graphical_query(source)
        if facts is None:
            database = figure2_family()
        else:
            database = Database.from_facts(facts)
        plain = GraphLogEngine().answers(query, database)
        optimized = GraphLogEngine(optimize=True).answers(query, database)
        assert plain == optimized

    def test_aux_predicates_folded(self):
        query = parse_graphical_query(
            "define (X) -[out]-> (Y) { (X) -[a b]-> (Y); }"
        )
        database = Database.from_facts({"a": [("1", "2")], "b": [("2", "3")]})
        result = GraphLogEngine(optimize=True).run(query, database)
        assert result.facts("out") == {("1", "3")}
        assert "path" not in result  # the composition auxiliary was inlined
