"""Tests for materialized views and incremental maintenance."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.translate import translate
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.errors import AggregationError
from repro.graphs.bridge import EdgeLabel
from repro.ham.store import HAMStore
from repro.ham.views import ViewManager, incremental_insert, is_monotone_program

REACH = parse_graphical_query(
    """
    define (X) -[reach]-> (Y) {
        (X) -[link+]-> (Y);
    }
    """
)

NONMONO = parse_graphical_query(
    """
    define (X) -[blocked]-> (Y) {
        (X) -[link]-> (Y);
        (X) -[~fast]-> (Y);
    }
    """
)


class TestMonotonicity:
    def test_positive_program_monotone(self):
        assert is_monotone_program(translate(REACH))

    def test_negation_not_monotone(self):
        assert not is_monotone_program(translate(NONMONO))


class TestIncrementalInsert:
    def _materialize(self, program, edb):
        return evaluate(program, edb)

    def test_matches_recompute_simple(self):
        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            """
        )
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        materialized = self._materialize(program, edb)
        updated = incremental_insert(program, materialized, {"e": [("c", "d")]})
        full = self._materialize(
            program, Database.from_facts({"e": [("a", "b"), ("b", "c"), ("c", "d")]})
        )
        assert updated.to_dict() == full.to_dict()

    def test_bridging_edge_connects_components(self):
        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            """
        )
        edb = Database.from_facts(
            {"e": [("a1", "a2"), ("a2", "a3"), ("b1", "b2"), ("b2", "b3")]}
        )
        materialized = self._materialize(program, edb)
        updated = incremental_insert(program, materialized, {"e": [("a3", "b1")]})
        assert ("a1", "b3") in updated.facts("tc")

    def test_multi_stratum_like_chain_of_idbs(self):
        program = parse_program(
            """
            hop(X, Y) :- e(X, Y).
            two(X, Z) :- hop(X, Y), hop(Y, Z).
            far(X, Y) :- two(X, Y).
            far(X, Y) :- two(X, Z), far(Z, Y).
            """
        )
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c"), ("c", "d")]})
        materialized = self._materialize(program, edb)
        updated = incremental_insert(program, materialized, {"e": [("d", "e")]})
        full = self._materialize(
            program,
            Database.from_facts({"e": [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]}),
        )
        assert updated.to_dict() == full.to_dict()

    def test_duplicate_insert_noop(self):
        program = parse_program("p(X, Y) :- e(X, Y).")
        edb = Database.from_facts({"e": [("a", "b")]})
        materialized = self._materialize(program, edb)
        updated = incremental_insert(program, materialized, {"e": [("a", "b")]})
        assert updated.to_dict() == materialized.to_dict()

    def test_input_not_mutated(self):
        program = parse_program("p(X, Y) :- e(X, Y).")
        edb = Database.from_facts({"e": [("a", "b")]})
        materialized = self._materialize(program, edb)
        before = materialized.to_dict()
        incremental_insert(program, materialized, {"e": [("x", "y")]})
        assert materialized.to_dict() == before

    def test_nonmonotone_rejected(self):
        program = translate(NONMONO)
        with pytest.raises(AggregationError):
            incremental_insert(program, Database(), {"link": [("a", "b")]})

    def test_random_differential(self):
        import random

        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            """
        )
        rng = random.Random(5)
        nodes = [f"n{i}" for i in range(12)]
        edges = []
        edb = Database.from_facts({"e": []})
        edb.relation("e", 2)
        materialized = self._materialize(program, edb)
        for step in range(25):
            new = (rng.choice(nodes), rng.choice(nodes))
            if new[0] == new[1]:
                continue
            edges.append(new)
            materialized = incremental_insert(program, materialized, {"e": [new]})
            full = self._materialize(program, Database.from_facts({"e": edges}))
            assert materialized.facts("tc") == full.facts("tc"), step


class TestViewManager:
    def _store(self):
        store = HAMStore()
        db = Database.from_facts({"link": [("a", "b"), ("b", "c")]})
        store.load_database(db)
        return store

    def test_register_evaluates(self):
        manager = ViewManager(self._store())
        manager.register("reach", REACH)
        assert ("a", "c") in manager.answers("reach")

    def test_incremental_on_insert(self):
        store = self._store()
        manager = ViewManager(store)
        view = manager.register("reach", REACH)
        with store.session().transaction() as txn:
            txn.add_edge("c", "d", EdgeLabel("link"))
        assert ("a", "d") in manager.answers("reach")
        assert view.incremental_updates == 1
        assert view.full_refreshes == 1  # the initial one

    def test_delete_maintained_incrementally(self):
        store = self._store()
        manager = ViewManager(store)
        view = manager.register("reach", REACH)
        with store.session().transaction() as txn:
            txn.remove_edge("b", "c", EdgeLabel("link"))
        assert ("a", "c") not in manager.answers("reach")
        assert ("a", "b") in manager.answers("reach")
        assert view.full_refreshes == 1  # only the initial one
        assert view.incremental_updates == 1
        assert view.overdeleted > 0

    def test_nonmonotone_view_maintained_incrementally(self):
        store = self._store()
        db = Database.from_facts({"fast": [("a", "b")]})
        store.load_database(db)
        manager = ViewManager(store)
        view = manager.register("blocked", NONMONO)
        assert manager.answers("blocked") == {("b", "c")}
        with store.session().transaction() as txn:
            txn.add_edge("c", "d", EdgeLabel("link"))
        assert ("c", "d") in manager.answers("blocked")
        # A new fast edge must *retract* the blocked answer, through the
        # negated literal, without a full refresh.
        with store.session().transaction() as txn:
            txn.add_edge("c", "d", EdgeLabel("fast"))
        assert ("c", "d") not in manager.answers("blocked")
        assert view.full_refreshes == 1
        assert view.incremental_updates == 2

    def test_relabel_maintained_incrementally(self):
        store = self._store()
        manager = ViewManager(store)
        manager.register(
            "marked",
            parse_graphical_query(
                "define (X) -[marked]-> (Y) { (X) -[link]-> (Y); stop(Y); }"
            ),
        )
        assert manager.answers("marked") == set()
        with store.session().transaction() as txn:
            txn.set_node_label("c", "stop")
        assert manager.answers("marked") == {("b", "c")}
        with store.session().transaction() as txn:
            txn.set_node_label("c", None)
        assert manager.answers("marked") == set()

    def test_summary_view_falls_back_to_full_refresh(self):
        # Aggregation/summarization is non-monotone in a way support counts
        # cannot track; such views must refuse maintenance and recompute.
        from repro.core.query_graph import GraphicalQuery

        query = GraphicalQuery()
        graph = query.define("X", "Y", "best", extra=["V"])
        graph.summarize("X", "Y", "hop", "longest", "V")

        store = HAMStore()
        store.load_database(Database.from_facts({"hop": [("a", "b", 3)]}))
        manager = ViewManager(store)
        view = manager.register("best", query)
        assert view.maintainable is False
        assert "not maintainable" in view.fallback_reason
        assert manager.answers("best") == {("a", "b", 3)}
        with store.session().transaction() as txn:
            txn.add_edge("b", "c", EdgeLabel("hop", (2,)))
        assert ("a", "c", 5) in manager.answers("best")
        assert view.full_refreshes == 2
        assert view.incremental_updates == 0

    def test_view_manager_stats_shape(self):
        store = self._store()
        manager = ViewManager(store)
        manager.register("reach", REACH)
        with store.session().transaction() as txn:
            txn.add_edge("c", "d", EdgeLabel("link"))
        stats = manager.stats()
        assert stats["count"] == 1
        assert stats["totals"]["incremental_updates"] == 1
        assert stats["totals"]["view_maintenance_ms"] >= 0
        assert stats["views"]["reach"]["maintainable"] is True

    def test_star_view_sees_new_nodes(self):
        store = self._store()
        manager = ViewManager(store)
        manager.register(
            "reach0",
            parse_graphical_query(
                "define (X) -[reach0]-> (Y) { (X) -[link*]-> (Y); }"
            ),
        )
        with store.session().transaction() as txn:
            txn.add_node("z")
            txn.add_edge("c", "z", EdgeLabel("link"))
        answers = manager.answers("reach0")
        assert ("z", "z") in answers
        assert ("a", "z") in answers

    def test_matches_fresh_evaluation_after_many_commits(self):
        store = self._store()
        manager = ViewManager(store)
        manager.register("reach", REACH)
        for edge in [("c", "d"), ("d", "e"), ("x", "y"), ("e", "a")]:
            with store.session().transaction() as txn:
                txn.add_edge(edge[0], edge[1], EdgeLabel("link"))
        from repro.core.engine import GraphLogEngine

        fresh = GraphLogEngine().answers(REACH, store.graph, "reach")
        assert manager.answers("reach") == fresh
