"""Tests for the STC-DATALOG -> GraphLog direction of Lemma 3.4."""

import pytest

from repro.core.engine import GraphLogEngine
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.errors import TranslationError
from repro.translation.sl_to_stc import prepare_adom, sl_to_stc
from repro.translation.to_graphlog import diagonal_projection, graphlog_from_stc

TC_TEXT = """
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
"""


class TestShapes:
    def test_tc_pair_becomes_single_closure_graph(self):
        query, unary = graphlog_from_stc(parse_program(TC_TEXT))
        assert len(query) == 1
        graph = query.graphs[0]
        assert len(graph.edges) == 1
        assert str(graph.edges[0].pre) == "e+"
        assert unary == set()

    def test_wide_tc_pair(self):
        program = parse_program(
            """
            t(X1, X2, Y1, Y2) :- b(X1, X2, Y1, Y2).
            t(X1, X2, Y1, Y2) :- b(X1, X2, Z1, Z2), t(Z1, Z2, Y1, Y2).
            """
        )
        query, _unary = graphlog_from_stc(program)
        graph = query.graphs[0]
        assert len(graph.edges[0].source) == 2

    def test_non_tc_recursion_rejected(self):
        with pytest.raises(TranslationError):
            graphlog_from_stc(
                parse_program(
                    """
                    sg(X, X) :- person(X).
                    sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
                    """
                )
            )

    def test_facts_rejected(self):
        with pytest.raises(TranslationError):
            graphlog_from_stc(parse_program("p(a, b).\nq(X, Y) :- p(X, Y)."))

    def test_arity0_rejected(self):
        with pytest.raises(TranslationError):
            graphlog_from_stc(parse_program("go :- p(X, Y)."))

    def test_negated_body_literal_supported(self):
        program = parse_program(
            TC_TEXT + "far(X, Y) :- tc(X, Y), not e(X, Y).\n"
        )
        query, _unary = graphlog_from_stc(program)
        db = Database.from_facts({"e": [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]})
        got = GraphLogEngine().answers(query, db, "far")
        want = set(evaluate(program, db).facts("far"))
        assert got == want

    def test_comparison_body_supported(self):
        program = parse_program("older(X, Y) :- age(X, A), age(Y, B), B < A.")
        query, _unary = graphlog_from_stc(program)
        db = Database.from_facts({"age": [("ann", 30), ("bob", 20)]})
        got = GraphLogEngine().answers(query, db, "older")
        assert got == {("ann", "bob")}


class TestRoundTrip:
    def _roundtrip_answers(self, sl_text, edb, predicate):
        program = parse_program(sl_text)
        stc = sl_to_stc(program, use_predicate_name_signatures=False)
        query, unary = graphlog_from_stc(stc.program)
        db = Database.from_facts(edb)
        result = GraphLogEngine().run(query, prepare_adom(db))
        if predicate in unary:
            got = diagonal_projection(result, predicate)
            want = {r[0] for r in evaluate(program, db).facts(predicate)}
        else:
            got = set(result.facts(predicate))
            want = set(evaluate(program, db).facts(predicate))
        return got, want

    def test_same_generation(self):
        got, want = self._roundtrip_answers(
            """
            sg(X, X) :- person(X).
            sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
            """,
            {
                "person": [(p,) for p in "abcdef"],
                "parent": [("c", "a"), ("d", "a"), ("e", "b"), ("f", "b")],
            },
            "sg",
        )
        assert got == want and want

    def test_unary_reachability(self):
        got, want = self._roundtrip_answers(
            """
            reach(Y) :- start(X), e(X, Y).
            reach(Y) :- e(X, Y), reach(X).
            """,
            {"start": [("a",)], "e": [("a", "b"), ("b", "c"), ("x", "y")]},
            "reach",
        )
        assert got == want == {"b", "c"}

    def test_negation_across_strata(self):
        got, want = self._roundtrip_answers(
            TC_TEXT
            + """
            n(X, X) :- e(X, _).
            far(X, Y) :- tc(X, Y), not e(X, Y).
            """,
            {"e": [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]},
            "far",
        )
        assert got == want and want

    def test_full_circle_from_graphlog(self):
        # GraphLog -> λ -> Algorithm 3.1 -> GraphLog again.
        from repro.core.dsl import parse_graphical_query
        from repro.core.translate import translate

        original = parse_graphical_query(
            """
            define (P1) -[not-desc-of(P2)]-> (P3) {
                (P1) -[descendant+]-> (P3);
                (P2) -[~descendant+]-> (P3);
                person(P2);
            }
            """
        )
        db = Database.from_facts(
            {
                "descendant": [("a", "b"), ("b", "c"), ("d", "e")],
                "person": [(p,) for p in "abcde"],
            }
        )
        engine = GraphLogEngine()
        first = engine.answers(original, db, "not-desc-of")
        sl = translate(original)
        stc = sl_to_stc(sl, use_predicate_name_signatures=False)
        again, _unary = graphlog_from_stc(stc.program)
        second = set(engine.run(again, prepare_adom(db)).facts("not-desc-of"))
        assert first == second and first
