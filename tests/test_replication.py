"""Replication: bootstrap/tail framing, the replica applier, min-version
reads, client retries, and the read/write router.

Network tests run real servers on ephemeral ports; the heavier SIGKILL
fault injection lives in ``test_replication_crash.py``.
"""

import socket
import threading
import time

import pytest

from repro.errors import (
    ProtocolError,
    ReadOnlyError,
    ReplicaStale,
    ServiceError,
    StoreError,
)
from repro.ham.store import HAMStore
from repro.persist import DurabilityManager, PersistenceConfig
from repro.persist import wal
from repro.replication import ReplicaApplier, ReplicationSource, RoutingClient
from repro.replication.router import RouterServer, parse_address
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import QueryService, ServiceConfig, ServiceServer

TC_PROGRAM = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y)."


def commit_edge(store, source, target, label="e"):
    session = store.session()
    with session.transaction() as txn:
        txn.add_edge(source, target, label)
    return store.version


def start_server(**config_kwargs):
    config_kwargs.setdefault("port", 0)
    return ServiceServer(config=ServiceConfig(**config_kwargs)).start_background()


@pytest.fixture
def primary_server():
    server = start_server()
    yield server
    server.stop()


@pytest.fixture
def cluster(primary_server):
    """A primary and two replica servers, torn down replicas-first."""
    address = f"127.0.0.1:{primary_server.port}"
    replicas = [
        start_server(replica_of=address, repl_wait_ms=200, version_wait_ms=500)
        for _ in range(2)
    ]
    for replica in replicas:
        assert replica.service.applier.wait_ready(10)
    yield primary_server, replicas
    for replica in replicas:
        replica.stop()


# --------------------------------------------------------------------------
# WAL iter_records / segment selection (satellite: exact-boundary fix)
# --------------------------------------------------------------------------


class TestWalIteration:
    def test_select_segments_exact_boundary(self):
        segments = [(1, "a"), (5, "b"), (9, "c")]
        # A start landing exactly on a segment's first version must not
        # scan the previous segment.
        assert wal.select_segments(segments, 5) == [(5, "b"), (9, "c")]
        # A start one below the boundary still needs the earlier segment.
        assert wal.select_segments(segments, 4) == segments
        assert wal.select_segments(segments, 9) == [(9, "c")]
        assert wal.select_segments(segments, 100) == [(9, "c")]
        assert wal.select_segments(segments, 1) == segments
        assert wal.select_segments([], 3) == []

    def test_iter_records_spans_rotated_segments(self, tmp_path):
        manager = DurabilityManager(
            PersistenceConfig(str(tmp_path), fsync="off", segment_bytes=512)
        )
        store = manager.recover()
        for i in range(12):
            commit_edge(store, f"n{i}", f"n{i + 1}")
        assert len(wal.list_segments(manager.wal_dir)) > 1, "no rotation happened"
        for start in (0, 1, 5, 11, 12):
            versions = [v for v, _ in wal.iter_records(manager.wal_dir, start)]
            assert versions == list(range(start + 1, 13))
        manager.close()

    def test_iter_records_gap_after_pruning(self, tmp_path):
        manager = DurabilityManager(
            PersistenceConfig(str(tmp_path), fsync="off", segment_bytes=256)
        )
        store = manager.recover()
        for i in range(10):
            commit_edge(store, f"n{i}", f"n{i + 1}")
        manager.checkpoint()  # prunes segments fully covered by the snapshot
        commit_edge(store, "x", "y")
        remaining_first = wal.list_segments(manager.wal_dir)[0][0]
        assert remaining_first > 1, "pruning removed nothing; test is vacuous"
        with pytest.raises(StoreError, match="gap"):
            list(wal.iter_records(manager.wal_dir, 0))
        # From the first retained version onward it iterates cleanly.
        versions = [v for v, _ in wal.iter_records(manager.wal_dir, remaining_first - 1)]
        assert versions == list(range(remaining_first, store.version + 1))
        manager.close()


# --------------------------------------------------------------------------
# Store-level replication hooks
# --------------------------------------------------------------------------


class TestStoreReplication:
    def test_apply_replicated_mirrors_commits(self):
        primary = HAMStore()
        replica = HAMStore()
        replica.set_read_only(True)
        for i in range(5):
            commit_edge(primary, f"a{i}", f"a{i + 1}")
        for record in primary.records_since(0):
            replica.apply_replicated(record)
        assert replica.version == primary.version
        assert replica.graph == primary.graph

    def test_apply_replicated_rejects_out_of_order(self):
        primary = HAMStore()
        replica = HAMStore()
        for i in range(3):
            commit_edge(primary, f"a{i}", f"a{i + 1}")
        records = primary.records_since(0)
        replica.apply_replicated(records[0])
        with pytest.raises(StoreError, match="out of order"):
            replica.apply_replicated(records[2])

    def test_read_only_store_rejects_writes(self):
        store = HAMStore()
        store.set_read_only(True)
        with pytest.raises(StoreError, match="read-only"):
            commit_edge(store, "a", "b")
        store.set_read_only(False)
        assert commit_edge(store, "a", "b") == 1

    def test_wait_for_version(self):
        store = HAMStore()
        assert store.wait_for_version(0, 0)
        assert not store.wait_for_version(1, 0.02)
        timer = threading.Timer(0.05, commit_edge, args=(store, "a", "b"))
        timer.start()
        try:
            assert store.wait_for_version(1, 5)
        finally:
            timer.join()

    def test_replace_state_refuses_durable_store(self, tmp_path):
        manager = DurabilityManager(PersistenceConfig(str(tmp_path), fsync="off"))
        store = manager.recover()
        with pytest.raises(StoreError, match="durab"):
            store.replace_state(HAMStore().graph, 5, 5)
        manager.close()


# --------------------------------------------------------------------------
# ReplicationSource framing (bootstrap + tail), no network
# --------------------------------------------------------------------------


class TestReplicationSource:
    def test_bootstrap_snapshot_for_memory_primary(self):
        store = HAMStore()
        commit_edge(store, "a", "b")
        document = ReplicationSource(store).bootstrap()
        assert document["source"] == "snapshot"
        assert document["version"] == 1
        assert isinstance(document["last_txn_id"], int)

    def test_bootstrap_prefers_checkpoint(self, tmp_path):
        manager = DurabilityManager(PersistenceConfig(str(tmp_path), fsync="off"))
        store = manager.recover()
        for i in range(4):
            commit_edge(store, f"a{i}", f"a{i + 1}")
        manager.checkpoint()
        commit_edge(store, "post", "checkpoint")
        document = ReplicationSource(store, manager).bootstrap()
        # The checkpoint is behind the live store; the WAL covers the rest.
        assert document["source"] == "checkpoint"
        assert document["version"] == 4
        tail = ReplicationSource(store, manager).tail(document["version"])
        assert [r["version"] for r in tail["records"]] == [5]

    def test_tail_orders_and_limits(self):
        store = HAMStore()
        source = ReplicationSource(store)
        for i in range(6):
            commit_edge(store, f"a{i}", f"a{i + 1}")
        body = source.tail(2, max_records=3)
        assert [r["version"] for r in body["records"]] == [3, 4, 5]
        assert body["version"] == 6
        assert "reset" not in body
        rest = source.tail(5)
        assert [r["version"] for r in rest["records"]] == [6]

    def test_tail_heartbeat_when_caught_up(self):
        store = HAMStore()
        commit_edge(store, "a", "b")
        body = ReplicationSource(store).tail(1, wait_ms=30)
        assert body == {"records": [], "version": 1, "epoch": store.epoch}

    def test_tail_long_poll_returns_on_commit(self):
        store = HAMStore()
        source = ReplicationSource(store)
        commit_edge(store, "a", "b")
        timer = threading.Timer(0.05, commit_edge, args=(store, "b", "c"))
        started = time.monotonic()
        timer.start()
        try:
            body = source.tail(1, wait_ms=5000)
        finally:
            timer.join()
        assert time.monotonic() - started < 4.0, "long-poll did not wake on commit"
        assert [r["version"] for r in body["records"]] == [2]

    def test_tail_resets_replica_ahead_of_primary(self):
        store = HAMStore()
        commit_edge(store, "a", "b")
        body = ReplicationSource(store).tail(10)
        assert body["reset"] is True
        assert body["records"] == []
        assert "ahead" in body["reason"]

    def test_tail_resets_when_history_pruned(self, tmp_path):
        manager = DurabilityManager(
            PersistenceConfig(str(tmp_path), fsync="off", segment_bytes=256)
        )
        store = manager.recover()
        for i in range(10):
            commit_edge(store, f"a{i}", f"a{i + 1}")
        manager.checkpoint()
        source = ReplicationSource(store, manager)
        # The store's in-memory log still covers recent history, so force
        # the WAL path by asking for history below the in-memory base of a
        # freshly recovered store.
        manager.close()
        manager2 = DurabilityManager(
            PersistenceConfig(str(tmp_path), fsync="off", segment_bytes=256)
        )
        store2 = manager2.recover()
        source = ReplicationSource(store2, manager2)
        body = source.tail(0)
        assert body.get("reset") is True
        manager2.close()

    def test_wal_fallback_below_in_memory_base(self, tmp_path):
        # keep_checkpoints=2 retains WAL history back to the OLDEST kept
        # checkpoint (v3), so after recovering from the newest (v6) a tail
        # from v3 is below the in-memory base yet still WAL-servable.
        manager = DurabilityManager(
            PersistenceConfig(str(tmp_path), fsync="off", keep_checkpoints=2)
        )
        store = manager.recover()
        for i in range(3):
            commit_edge(store, f"a{i}", f"a{i + 1}")
        manager.checkpoint()
        for i in range(3, 6):
            commit_edge(store, f"a{i}", f"a{i + 1}")
        manager.checkpoint()
        commit_edge(store, "b1", "b2")
        manager.close()
        manager2 = DurabilityManager(PersistenceConfig(str(tmp_path), fsync="off"))
        store2 = manager2.recover()
        assert store2.version == 7
        assert store2.records_since(3) is None, "in-memory log unexpectedly covers v4"
        body = ReplicationSource(store2, manager2).tail(3)
        assert [r["version"] for r in body["records"]] == [4, 5, 6, 7]
        # History before the oldest retained checkpoint is gone: reset.
        assert ReplicationSource(store2, manager2).tail(0)["reset"] is True
        manager2.close()


# --------------------------------------------------------------------------
# Protocol: new ops + field validation
# --------------------------------------------------------------------------


class TestProtocol:
    def test_repl_ops_are_known(self):
        assert "repl_bootstrap" in protocol.OPS
        assert "repl_tail" in protocol.OPS

    @pytest.mark.parametrize("field", ["min_version", "from_version", "max_records", "wait_ms"])
    @pytest.mark.parametrize("bad", [-1, "7", 1.5, True])
    def test_replication_fields_validated(self, field, bad):
        with pytest.raises(ProtocolError, match=field):
            protocol.decode_request(
                protocol.encode({"op": "repl_tail", field: bad})
            )

    def test_error_codes_round_trip(self):
        for exc_type in (ReadOnlyError, ReplicaStale):
            response = protocol.error_response(1, exc_type("boom"))
            with pytest.raises(exc_type):
                protocol.raise_for_error(response)


# --------------------------------------------------------------------------
# min-version reads (read-your-writes gate)
# --------------------------------------------------------------------------


class TestMinVersionReads:
    def test_satisfied_min_version_is_a_plain_read(self):
        service = QueryService()
        commit_edge(service.store, "a", "b")
        body = service.execute(
            {"op": "datalog", "query": TC_PROGRAM, "min_version": 1}
        )
        assert body["version"] == 1

    def test_stale_store_fails_after_bounded_wait(self):
        service = QueryService(config=ServiceConfig(version_wait_ms=30))
        commit_edge(service.store, "a", "b")
        started = time.monotonic()
        with pytest.raises(ReplicaStale, match="requires 5"):
            service.execute(
                {"op": "datalog", "query": TC_PROGRAM, "min_version": 5}
            )
        assert time.monotonic() - started < 5.0

    def test_wait_succeeds_when_commit_arrives(self):
        service = QueryService(config=ServiceConfig(version_wait_ms=5000))
        timer = threading.Timer(0.05, commit_edge, args=(service.store, "a", "b"))
        timer.start()
        try:
            body = service.execute(
                {"op": "datalog", "query": TC_PROGRAM, "min_version": 1}
            )
        finally:
            timer.join()
        assert body["version"] >= 1

    def test_min_version_does_not_split_the_result_cache(self):
        service = QueryService()
        commit_edge(service.store, "a", "b")
        first = service.execute({"op": "datalog", "query": TC_PROGRAM})
        again = service.execute(
            {"op": "datalog", "query": TC_PROGRAM, "min_version": 1}
        )
        assert first["cache"] == "miss"
        assert again["cache"] == "hit"


# --------------------------------------------------------------------------
# ServiceClient retries (satellite)
# --------------------------------------------------------------------------


class TestClientRetries:
    def test_connect_retries_with_backoff(self, monkeypatch):
        attempts = []
        real_connect = socket.create_connection

        def flaky(address, timeout=None):
            attempts.append(address)
            if len(attempts) < 3:
                raise ConnectionRefusedError("boom")
            return real_connect(address, timeout=timeout)

        monkeypatch.setattr(socket, "create_connection", flaky)
        server = start_server()
        try:
            client = ServiceClient(
                port=server.port, retries=3, backoff_base=0.001
            )
            assert client.ping() is True
            client.close()
        finally:
            server.stop()
        assert len(attempts) == 3

    def test_connect_retries_exhausted(self, monkeypatch):
        attempts = []

        def refuse(address, timeout=None):
            attempts.append(address)
            raise ConnectionRefusedError("nope")

        monkeypatch.setattr(socket, "create_connection", refuse)
        with pytest.raises(ServiceError, match="cannot connect"):
            ServiceClient(port=1, retries=2, backoff_base=0.001)
        assert len(attempts) == 3  # initial try + 2 retries

    def test_reconnect_after_close_is_transparent(self, primary_server):
        client = ServiceClient(port=primary_server.port, retries=1, backoff_base=0.001)
        assert client.ping() is True
        client.close()  # drops the socket; next call must reconnect
        assert client.ping() is True
        client.close()

    def test_no_retries_keeps_fail_fast_poisoning(self, primary_server):
        client = ServiceClient(port=primary_server.port)
        assert client.ping() is True
        client._poison()
        with pytest.raises(ServiceError, match="poisoned"):
            client.ping()

    def test_receive_failures_are_never_retried(self, primary_server, monkeypatch):
        client = ServiceClient(port=primary_server.port, retries=5, backoff_base=0.001)
        monkeypatch.setattr(
            client, "_readline", lambda *a: (_ for _ in ()).throw(OSError("torn"))
        )
        with pytest.raises(ServiceError, match="failed: torn"):
            client.ping()
        assert client.poisoned


# --------------------------------------------------------------------------
# Replica applier + replica server behaviour
# --------------------------------------------------------------------------


class TestReplicaServer:
    def test_replica_serves_reads_and_rejects_writes(self, cluster):
        primary, replicas = cluster
        with ServiceClient(port=primary.port) as writer:
            writer.update(edges=[["a", "e", "b"], ["b", "e", "c"]])
        replica = replicas[0]
        assert replica.service.store.wait_for_version(1, 10)
        with ServiceClient(port=replica.port) as reader:
            result = reader.datalog(TC_PROGRAM, min_version=1)
            assert ("a", "c") in result["tc"]
            with pytest.raises(ReadOnlyError, match="read-only replica"):
                reader.update(edges=[["x", "e", "y"]])

    def test_replica_stats_and_health(self, cluster):
        primary, replicas = cluster
        with ServiceClient(port=primary.port) as writer:
            writer.update(edges=[["a", "e", "b"]])
        replica = replicas[0]
        assert replica.service.store.wait_for_version(1, 10)
        status = replica.service.replication_status()
        assert status["role"] == "replica"
        assert status["applied_version"] == 1
        assert status["source"]["role"] == "primary"  # can chain further replicas
        health = replica.service.health()
        assert health["replication"]["bootstrapped"] is True
        assert health["status"] == "ok"
        assert "repro_repl_lag_versions" in replica.service.prometheus_text()
        primary_stats = primary.service.replication_status()
        assert primary_stats["role"] == "primary"
        assert primary_stats["bootstraps_served"] >= 2

    def test_healthz_degrades_past_max_lag(self, cluster):
        primary, replicas = cluster
        replica = replicas[0]
        replica.service.config.repl_max_lag = 0
        applier = replica.service.applier
        with applier._lock:
            applier._primary_version = replica.service.store.version + 5
        assert replica.service.health()["status"] == "degraded"
        with applier._lock:
            applier._primary_version = replica.service.store.version
        assert replica.service.health()["status"] == "ok"

    def test_replica_rebootstraps_when_primary_regresses(self, primary_server):
        port = primary_server.port
        with ServiceClient(port=port) as writer:
            for i in range(5):
                writer.update(edges=[[f"a{i}", "e", f"a{i + 1}"]])
        store = HAMStore()
        applier = ReplicaApplier(store, "127.0.0.1", port, wait_ms=100,
                                 reconnect_min=0.01, reconnect_max=0.1)
        rebootstraps = []
        applier.on_rebootstrap(lambda: rebootstraps.append(True))
        applier.start()
        try:
            assert applier.wait_ready(10)
            assert store.wait_for_version(5, 10)
            # Replace the primary with a fresh (empty) one on the same port:
            # the replica is now AHEAD and must re-bootstrap, not error.
            primary_server.stop()
            fresh = start_server(host="127.0.0.1", port=port)
            try:
                with ServiceClient(port=port) as writer:
                    writer.update(edges=[["z1", "e", "z2"]])
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    if rebootstraps and store.version == 1 and store.graph.edge_count() == 1:
                        break
                    time.sleep(0.05)
                assert rebootstraps, "replica never re-bootstrapped"
                assert store.version == fresh.service.store.version
                assert store.graph == fresh.service.store.graph
            finally:
                applier.stop()
                fresh.stop()
        finally:
            applier.stop()

    def test_replica_mode_rejects_data_dir(self, tmp_path):
        with pytest.raises(StoreError, match="incompatible"):
            QueryService(
                config=ServiceConfig(
                    replica_of="127.0.0.1:1", data_dir=str(tmp_path)
                )
            )


# --------------------------------------------------------------------------
# Router: round-robin, ejection, read-your-writes, RouterServer
# --------------------------------------------------------------------------


class TestRouter:
    def test_parse_address(self):
        assert parse_address("10.0.0.1:7464") == ("10.0.0.1", 7464)
        assert parse_address(("h", 9)) == ("h", 9)
        assert parse_address("somehost") == ("somehost", 7464)

    def test_reads_round_robin_and_read_your_writes(self, cluster):
        primary, replicas = cluster
        addresses = [("127.0.0.1", r.port) for r in replicas]
        with RoutingClient(("127.0.0.1", primary.port), addresses) as router:
            router.update(edges=[["a", "e", "b"]])
            router.update(edges=[["b", "e", "c"]])
            assert router.min_version == 2
            for _ in range(4):
                assert ("a", "c") in router.datalog(TC_PROGRAM)["tc"]
            stats = router.router_stats()
            assert stats["reads_routed"] == 4
            assert stats["writes_routed"] == 2
        # Both replicas actually served reads (round-robin, no ejections).
        for replica in replicas:
            counters = replica.service.stats()["metrics"]["counters"]
            assert counters.get("requests.datalog", 0) >= 1

    def test_dead_replica_is_ejected_and_reads_survive(self, cluster):
        primary, replicas = cluster
        dead, alive = replicas
        addresses = [("127.0.0.1", dead.port), ("127.0.0.1", alive.port)]
        with RoutingClient(
            ("127.0.0.1", primary.port), addresses, timeout=2.0, eject_seconds=30
        ) as router:
            router.update(edges=[["a", "e", "b"]])
            dead.stop()
            for _ in range(4):
                assert ("a", "b") in router.datalog(TC_PROGRAM)["tc"]
            stats = router.router_stats()
            assert stats["ejections"] >= 1
            dead_state = next(
                entry for entry in stats["replicas"]
                if entry["address"].endswith(str(dead.port))
            )
            assert not dead_state["healthy"]

    def test_stale_replica_redirects_to_primary(self, primary_server):
        # A plain independent server poses as a replica stuck at version 0
        # with no catch-up wait: every read-your-writes read must redirect.
        stuck = start_server(version_wait_ms=0)
        try:
            with RoutingClient(
                ("127.0.0.1", primary_server.port), [("127.0.0.1", stuck.port)]
            ) as router:
                router.update(edges=[["a", "e", "b"]])
                assert ("a", "b") in router.datalog(TC_PROGRAM)["tc"]
                stats = router.router_stats()
                assert stats["stale_redirects"] >= 1
                assert stats["primary_fallbacks"] >= 1
                assert stats["ejections"] == 0  # stale is not unhealthy
        finally:
            stuck.stop()

    def test_write_errors_propagate_without_version_bump(self, cluster):
        primary, replicas = cluster
        with RoutingClient(("127.0.0.1", primary.port)) as router:
            with pytest.raises(ProtocolError):
                router.call("update")  # no nodes/edges
            assert router.min_version is None

    def test_router_server_speaks_the_wire_protocol(self, cluster):
        primary, replicas = cluster
        router = RouterServer(
            f"127.0.0.1:{primary.port}",
            [f"127.0.0.1:{r.port}" for r in replicas],
        ).start()
        try:
            with ServiceClient(port=router.port) as client:
                client.update(edges=[["a", "e", "b"]])
                version = client.update(edges=[["b", "e", "c"]])
                assert version == 2
                assert ("a", "c") in client.datalog(TC_PROGRAM)["tc"]
                assert client.ping() is True
                with pytest.raises(ServiceError, match="unknown op"):
                    client.call("bogus")
        finally:
            router.stop()

    def test_router_server_isolates_tokens_per_connection(self, cluster):
        primary, replicas = cluster
        router = RouterServer(
            f"127.0.0.1:{primary.port}",
            [f"127.0.0.1:{r.port}" for r in replicas],
        ).start()
        try:
            with ServiceClient(port=router.port) as writer:
                writer.update(edges=[["a", "e", "b"]])
            with ServiceClient(port=router.port) as reader:
                # A different connection has no token; the read still works
                # (it may lag, but these replicas are fast).
                assert reader.ping() is True
        finally:
            router.stop()


class TestTopPanels:
    """`repro top` renders the replication stats block for both roles."""

    def _render(self, replication):
        from repro.service.top import TopDashboard

        stats = {"store": {"version": 3}, "metrics": {}, "replication": replication}
        return TopDashboard(client=None).render(stats)

    def test_replica_panel(self):
        text = self._render({
            "role": "replica",
            "primary": "127.0.0.1:7464",
            "connected": True,
            "lag_versions": 2,
            "applied_version": 41,
            "records_applied": 41,
            "tail_errors": 1,
        })
        assert "replica   of 127.0.0.1:7464  connected  lag 2 versions" in text
        assert "applied v41" in text and "errors 1" in text

    def test_replica_panel_disconnected_unknown_lag(self):
        text = self._render({
            "role": "replica",
            "primary": "127.0.0.1:7464",
            "connected": False,
            "lag_versions": None,
            "applied_version": 41,
        })
        assert "DISCONNECTED" in text and "lag ? versions" in text

    def test_primary_panel_appears_only_with_traffic(self):
        quiet = self._render({"role": "primary", "tail_requests": 0, "bootstraps_served": 0})
        assert "primary   bootstraps" not in quiet
        busy = self._render({
            "role": "primary",
            "tail_requests": 7,
            "bootstraps_served": 2,
            "records_shipped": 40,
            "resets_signaled": 1,
        })
        assert "primary   bootstraps 2  tails 7  shipped 40  resets 1" in busy

    def test_panels_show_epoch_and_promotion(self):
        replica = self._render({
            "role": "replica",
            "primary": "127.0.0.1:7464",
            "connected": False,
            "lag_versions": 3,
            "applied_version": 41,
            "seconds_since_poll": 12.4,
            "primary_epoch": "deadbeefcafe0123",
        })
        assert "DISCONNECTED 12s" in replica
        assert "epoch deadbeef" in replica
        primary = self._render({
            "role": "primary",
            "tail_requests": 7,
            "bootstraps_served": 2,
            "records_shipped": 40,
            "resets_signaled": 1,
            "epoch": "deadbeefcafe0123",
            "promotion": {"promoted": True},
        })
        assert "epoch deadbeef" in primary
        assert "PROMOTED" in primary


# --------------------------------------------------------------------------
# Epochs: store semantics, wire stamps, replica divergence detection
# --------------------------------------------------------------------------


class TestStoreEpoch:
    def test_epoch_minted_and_stable_across_commits(self):
        store = HAMStore()
        epoch = store.epoch
        assert isinstance(epoch, str) and epoch
        for i in range(3):
            commit_edge(store, f"a{i}", f"a{i + 1}")
        assert store.epoch == epoch, "commits must stay on one history line"

    def test_replace_state_mints_or_adopts_epoch(self):
        store = HAMStore()
        commit_edge(store, "a", "b")
        before = store.epoch
        store.replace_state(HAMStore().graph, 5, 5)
        assert store.epoch != before, "replacing history must rotate the epoch"
        store.replace_state(HAMStore().graph, 6, 6, epoch="cafe0123cafe0123")
        assert store.epoch == "cafe0123cafe0123"

    def test_set_epoch_rejects_empty(self):
        store = HAMStore()
        with pytest.raises(StoreError, match="epoch"):
            store.set_epoch("")

    def test_truncate_rotates_memory_epoch_but_not_durable(self, tmp_path):
        memory = HAMStore()
        for i in range(5):
            commit_edge(memory, f"a{i}", f"a{i + 1}")
        before = memory.epoch
        assert memory.truncate_history(1) > 0
        # In-memory, truncation discards servable history: new epoch.
        assert memory.epoch != before

        manager = DurabilityManager(PersistenceConfig(str(tmp_path), fsync="off"))
        durable = manager.recover()
        for i in range(5):
            commit_edge(durable, f"a{i}", f"a{i + 1}")
        before = durable.epoch
        assert durable.truncate_history(1) > 0
        # The WAL still serves the full line: same epoch.
        assert durable.epoch == before
        manager.close()

    def test_bootstrap_tail_and_reset_carry_epoch(self):
        store = HAMStore()
        commit_edge(store, "a", "b")
        source = ReplicationSource(store)
        assert source.bootstrap()["epoch"] == store.epoch
        assert source.tail(0)["epoch"] == store.epoch
        ahead = source.tail(10)
        assert ahead["reset"] is True
        assert ahead["epoch"] == store.epoch
        assert source.stats()["epoch"] == store.epoch


class TestEpochDivergence:
    """The tentpole bug: a primary restart that rewrites history back to an
    equal-or-higher version is invisible to version arithmetic — only the
    epoch stamp exposes it."""

    def _seed_primary_and_replica(self, check_epoch=True):
        server = start_server()
        port = server.port
        with ServiceClient(port=port) as writer:
            for i in range(3):
                writer.update(edges=[[f"a{i}", "e", f"a{i + 1}"]])
        store = HAMStore()
        applier = ReplicaApplier(
            store, "127.0.0.1", port, wait_ms=100,
            reconnect_min=0.01, reconnect_max=0.1, check_epoch=check_epoch,
        )
        applier.start()
        assert applier.wait_ready(10)
        assert store.wait_for_version(3, 10)
        return server, port, store, applier

    def _rewritten_primary(self, port):
        """A different history at version 4 >= the replica's 3: tail(3)
        serves records 4 with no reset, so versions alone look fine."""
        rewritten = HAMStore()
        for i in range(4):
            commit_edge(rewritten, f"z{i}", f"z{i + 1}")
        server = ServiceServer(
            store=rewritten, config=ServiceConfig(host="127.0.0.1", port=port)
        ).start_background()
        return server, rewritten

    def test_replica_adopts_primary_epoch(self):
        server, _port, _store, applier = self._seed_primary_and_replica()
        try:
            status = applier.status()
            assert status["primary_epoch"] == server.service.store.epoch
            assert status["epoch"] == server.service.store.epoch
            assert status["epoch_rebootstraps"] == 0
        finally:
            applier.stop()
            server.stop()

    def test_epoch_change_triggers_rebootstrap(self):
        server, port, store, applier = self._seed_primary_and_replica()
        fresh = None
        try:
            server.stop()
            fresh, rewritten = self._rewritten_primary(port)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if store.version == 4 and store.graph == rewritten.graph:
                    break
                time.sleep(0.05)
            assert store.graph == rewritten.graph, "replica never converged"
            status = applier.status()
            assert status["epoch_rebootstraps"] >= 1
            assert status["primary_epoch"] == rewritten.epoch
        finally:
            applier.stop()
            server.stop()
            if fresh is not None:
                fresh.stop()

    def test_epoch_check_disabled_reopens_silent_divergence(self):
        # The pre-epoch behavior: the replica happily applies records 4..
        # from a history it never saw and ends "in sync" with wrong data.
        server, port, store, applier = self._seed_primary_and_replica(
            check_epoch=False
        )
        fresh = None
        try:
            server.stop()
            fresh, rewritten = self._rewritten_primary(port)
            assert store.wait_for_version(4, 15)
            assert store.version == rewritten.version
            assert store.graph != rewritten.graph, (
                "replica state matches the rewritten primary; the divergence "
                "this test documents no longer reproduces"
            )
            status = applier.status()
            assert status["epoch_rebootstraps"] == 0
            assert status["bootstraps"] == 1
        finally:
            applier.stop()
            server.stop()
            if fresh is not None:
                fresh.stop()


# --------------------------------------------------------------------------
# Promotion + router failover
# --------------------------------------------------------------------------


class TestPromotion:
    def test_promote_flips_replica_to_writable_primary(self, cluster):
        primary, replicas = cluster
        with ServiceClient(port=primary.port) as writer:
            writer.update(edges=[["a", "e", "b"]])
        replica = replicas[0]
        assert replica.service.store.wait_for_version(1, 10)
        old_epoch = replica.service.store.epoch
        with ServiceClient(port=replica.port) as client:
            with pytest.raises(ReadOnlyError):
                client.update(edges=[["x", "e", "y"]])
            document = client.promote()
            assert document["promoted"] is True
            assert document["promoted_from"] == f"127.0.0.1:{primary.port}"
            assert document["applied_version"] == 1
            assert document["epoch"] != old_epoch
            assert client.update(edges=[["b", "e", "c"]]) == 2
            with pytest.raises(ProtocolError, match="already promoted"):
                client.promote()
        assert replica.service.store.epoch == document["epoch"]
        status = replica.service.replication_status()
        assert status["role"] == "primary"
        assert status["promotion"]["promoted_from"].endswith(str(primary.port))
        assert "repro_repl_promoted 1" in replica.service.prometheus_text()

    def test_promote_rejects_plain_primary(self, primary_server):
        with ServiceClient(port=primary_server.port) as client:
            with pytest.raises(ProtocolError, match="not a replica"):
                client.promote()

    def test_promotion_rotates_epoch_for_downstream(self, cluster):
        # A second replica still tailing must see the promoted server's new
        # epoch and re-bootstrap off it rather than trust version numbers.
        primary, replicas = cluster
        promoted, follower = replicas
        with ServiceClient(port=primary.port) as writer:
            writer.update(edges=[["a", "e", "b"]])
        for replica in replicas:
            assert replica.service.store.wait_for_version(1, 10)
        primary.stop()
        promoted.service.promote()
        with ServiceClient(port=promoted.port) as writer:
            writer.update(edges=[["b", "e", "c"]])
        # Point the follower at the promoted server (operator re-target).
        follower.service.applier.stop()
        follower.service.applier = None
        store = follower.service.store
        applier = ReplicaApplier(store, "127.0.0.1", promoted.port, wait_ms=100,
                                 reconnect_min=0.01, reconnect_max=0.1)
        follower.service.applier = applier
        applier.start()
        try:
            assert applier.wait_ready(10)
            assert store.wait_for_version(2, 10)
            assert store.graph == promoted.service.store.graph
            assert applier.status()["primary_epoch"] == promoted.service.store.epoch
        finally:
            applier.stop()


class TestFailover:
    def test_router_fails_writes_over_to_promoted_replica(self, cluster):
        primary, replicas = cluster
        addresses = [("127.0.0.1", r.port) for r in replicas]
        with RoutingClient(
            ("127.0.0.1", primary.port), addresses, retries=0
        ) as router:
            router.update(edges=[["a", "e", "b"]])
            for replica in replicas:
                assert replica.service.store.wait_for_version(1, 10)
            primary.stop()
            replicas[0].service.promote()
            assert router.update(edges=[["b", "e", "c"]]) == 2
            stats = router.router_stats()
            assert stats["failovers"] == 1
            assert stats["primary"].endswith(str(replicas[0].port))
            # Token re-armed from the failover write's own version.
            assert router.min_version == 2
            # The dead primary is parked as a replica candidate for rejoin.
            assert any(
                entry["address"].endswith(str(primary.port))
                for entry in stats["replicas"]
            )
            # Reads route too (the still-tailing replica reports stale, the
            # new primary serves).
            assert ("a", "c") in router.datalog(TC_PROGRAM)["tc"]

    def test_writes_fail_without_a_promoted_replica(self, cluster):
        primary, replicas = cluster
        addresses = [("127.0.0.1", r.port) for r in replicas]
        with RoutingClient(
            ("127.0.0.1", primary.port), addresses, retries=0
        ) as router:
            router.update(edges=[["a", "e", "b"]])
            primary.stop()
            # Nobody was promoted: both replicas answer read_only and the
            # original connection error surfaces.
            with pytest.raises(ServiceError):
                router.update(edges=[["b", "e", "c"]])
            assert router.router_stats()["failovers"] == 0

    def test_read_token_resets_when_unprovable(self, primary_server):
        # The primary that minted the token dies and the only replica is
        # permanently behind it: instead of deadlocking read-your-writes,
        # the router resets the token and serves current data.
        stuck = start_server(version_wait_ms=0)
        try:
            with RoutingClient(
                ("127.0.0.1", primary_server.port),
                [("127.0.0.1", stuck.port)],
                retries=0,
            ) as router:
                router.update(edges=[["a", "e", "b"]])
                assert router.min_version == 1
                primary_server.stop()
                result = router.datalog(TC_PROGRAM)
                assert result.get("tc", set()) == set()  # stuck server is empty
                stats = router.router_stats()
                assert stats["token_resets"] >= 1
                assert router.min_version is None
        finally:
            stuck.stop()

    def test_connect_failures_count_like_midcall_poisons(self, primary_server):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with ServiceClient(port=primary_server.port) as writer:
            writer.update(edges=[["a", "e", "b"]])
        with RoutingClient(
            ("127.0.0.1", primary_server.port),
            [("127.0.0.1", dead_port)],
            retries=0,
        ) as router:
            assert ("a", "b") in router.datalog(TC_PROGRAM)["tc"]
            stats = router.router_stats()
            entry = stats["replicas"][0]
            assert entry["failures"] >= 1, "connect refusal was not accounted"
            assert not entry["healthy"]
            assert stats["ejections"] >= 1
            assert stats["primary_fallbacks"] >= 1

    def test_router_server_shares_failover_topology(self, cluster):
        primary, replicas = cluster
        router = RouterServer(
            f"127.0.0.1:{primary.port}",
            [f"127.0.0.1:{r.port}" for r in replicas],
        ).start()
        try:
            with ServiceClient(port=router.port) as first:
                first.update(edges=[["a", "e", "b"]])
                for replica in replicas:
                    assert replica.service.store.wait_for_version(1, 10)
                primary.stop()
                replicas[0].service.promote()
                assert first.update(edges=[["b", "e", "c"]]) == 2
            assert router.failovers == 1
            assert router.primary.endswith(str(replicas[0].port))
            # A connection opened after the failover starts on the
            # discovered topology: no second probe needed.
            with ServiceClient(port=router.port) as second:
                assert second.update(edges=[["c", "e", "d"]]) == 3
            assert router.failovers == 1
        finally:
            router.stop()


# --------------------------------------------------------------------------
# Health: tail-disconnect grace (satellite)
# --------------------------------------------------------------------------


class TestDisconnectGrace:
    def test_stats_and_health_surface_tail_connection(self, cluster):
        _primary, replicas = cluster
        service = replicas[0].service
        status = service.stats()["replication"]
        assert status["tail_connected"] is True
        assert "seconds_since_poll" in status
        health = service.health()["replication"]
        assert health["tail_connected"] is True
        text = service.prometheus_text()
        assert "repro_repl_seconds_since_poll" in text
        assert "repro_repl_epoch_rebootstraps_total" in text
        assert 'repro_repl_epoch{epoch="' in text

    def test_healthz_degrades_after_disconnect_grace(self, cluster):
        _primary, replicas = cluster
        service = replicas[0].service
        applier = service.applier
        assert service.health()["status"] == "ok"
        with applier._lock:
            applier._connected = False
            applier._last_poll_monotonic = time.monotonic() - 5.0
        # Five seconds of silence is a blip under a generous grace...
        service.config.repl_disconnect_grace = 60.0
        assert service.health()["status"] == "ok"
        # ...and fatal once the grace period has passed.
        service.config.repl_disconnect_grace = 1.0
        assert service.health()["status"] == "degraded"
        # A tail that never polled cannot vouch for its staleness at all.
        service.config.repl_disconnect_grace = 60.0
        with applier._lock:
            applier._last_poll_monotonic = None
        assert service.health()["status"] == "degraded"
        with applier._lock:
            applier._connected = True
        assert service.health()["status"] == "ok"
