"""Tests for the interactive shell (driven through ShellSession.execute)."""

import io

import pytest

from repro.shell import ShellSession, repl


@pytest.fixture
def session():
    return ShellSession()


def feed(session, *lines):
    return [session.execute(line) for line in lines]


class TestFacts:
    def test_add_fact(self, session):
        assert session.execute("parent(ann, bob).") == "+ parent(ann, bob)"
        assert session.database.facts("parent") == {("ann", "bob")}

    def test_fact_without_period(self, session):
        session.execute("parent(ann, bob)")
        assert session.database.count("parent") == 1

    def test_rule_rejected_as_fact(self, session):
        out = session.execute("p(X) :- q(X).")
        assert out.startswith("error")

    def test_facts_listing(self, session):
        feed(session, "parent(ann, bob).", "city(rome).")
        out = session.execute("facts")
        assert "parent/2: 1 facts" in out
        assert "city/1: 1 facts" in out

    def test_facts_one_predicate(self, session):
        session.execute("parent(ann, bob).")
        out = session.execute("facts parent")
        assert "ann" in out and "bob" in out


class TestDefineAndRun:
    def test_single_line_define(self, session):
        out = session.execute("define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }")
        assert out == "defined anc"

    def test_multi_line_define(self, session):
        outputs = feed(
            session,
            "define (X) -[anc]-> (Y) {",
            "  (X) -[parent+]-> (Y);",
            "}",
        )
        assert outputs[:2] == ["", ""]
        assert outputs[2] == "defined anc"
        assert not session.pending

    def test_goal(self, session):
        feed(
            session,
            "parent(ann, bob).",
            "parent(bob, cal).",
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }",
        )
        out = session.execute("? anc(ann, X)")
        assert "bob" in out and "cal" in out

    def test_ground_goal_yes_no(self, session):
        feed(
            session,
            "parent(ann, bob).",
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }",
        )
        assert session.execute("? anc(ann, bob)") == "yes"
        assert session.execute("? anc(bob, ann)") == "no"

    def test_run_predicate(self, session):
        feed(
            session,
            "parent(ann, bob).",
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }",
        )
        out = session.execute("run anc")
        assert "anc (1 tuples)" in out

    def test_program(self, session):
        session.execute("define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }")
        out = session.execute("program")
        assert "parent-tc" in out

    def test_explain(self, session):
        feed(
            session,
            "parent(ann, bob).",
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }",
        )
        out = session.execute("explain anc(ann, bob)")
        assert "[base fact]" in out

    def test_explain_non_answer(self, session):
        feed(
            session,
            "parent(ann, bob).",
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }",
        )
        assert "not a derived answer" in session.execute("explain anc(bob, ann)")

    def test_queries_listing(self, session):
        session.execute("define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }")
        assert "define" in session.execute("queries")

    def test_incompatible_define_rejected_atomically(self, session):
        session.execute("define (X) -[a]-> (Y) { (X) -[b]-> (Y); }")
        out = session.execute("define (X) -[b]-> (Y) { (X) -[a]-> (Y); }")
        assert out.startswith("error")
        # The bad define must not have been partially registered.
        assert len(session.graphs) == 1


class TestOtherCommands:
    def test_rpq(self, session):
        feed(session, "link(a, b).", "link(b, c).")
        out = session.execute("rpq link+ a")
        assert "b" in out and "c" in out

    def test_rpq_all_pairs(self, session):
        feed(session, "link(a, b).")
        out = session.execute("rpq link+")
        assert "a" in out and "b" in out

    def test_load(self, session, tmp_path):
        path = tmp_path / "facts.dl"
        path.write_text("parent(ann, bob).\nparent(bob, cal).\n")
        out = session.execute(f"load {path}")
        assert out == f"loaded 2 facts from {path}"

    def test_load_rejects_rules(self, session, tmp_path):
        path = tmp_path / "rules.dl"
        path.write_text("p(X) :- q(X).\n")
        assert session.execute(f"load {path}").startswith("error")

    def test_clear_and_reset(self, session):
        feed(
            session,
            "parent(ann, bob).",
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }",
        )
        assert session.execute("clear") == "queries cleared"
        assert session.database.count("parent") == 1
        assert session.execute("reset") == "session reset"
        assert session.database.count() == 0

    def test_comments_and_blank_lines(self, session):
        assert session.execute("") == ""
        assert session.execute("% nothing") == ""

    def test_help(self, session):
        assert "define" in session.execute("help")

    def test_quit_raises(self, session):
        with pytest.raises(EOFError):
            session.execute("quit")

    def test_error_recovers(self, session):
        assert session.execute("?? ! garbage").startswith("error")
        assert session.execute("parent(a, b).") == "+ parent(a, b)"


class TestReplLoop:
    def test_scripted_session(self, capsys):
        stdin = io.StringIO(
            "parent(ann, bob).\n"
            "define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }\n"
            "? anc(ann, X)\n"
            "quit\n"
        )
        stdin.isatty = lambda: False
        assert repl(stdin=stdin) == 0
        out = capsys.readouterr().out
        assert "defined anc" in out
        assert "bob" in out


class TestSlowlogCommand:
    def test_off_by_default(self, session):
        assert "off" in session.execute("slowlog")

    def test_arm_record_show(self, session):
        session.execute("parent(ann, bob).")
        session.execute("define (X) -[anc]-> (Y) { (X) -[parent+]-> (Y); }")
        assert "armed" in session.execute("slowlog 0")
        session.execute("run anc")
        out = session.execute("slowlog")
        assert "request" in out  # entry header carries the request id
        assert "shell.run" in out  # rendered span tree
        assert "threshold 0ms" in out

    def test_disarm(self, session):
        session.execute("slowlog 5")
        assert "disabled" in session.execute("slowlog off")
        assert "off" in session.execute("slowlog")

    def test_bad_threshold_is_usage(self, session):
        assert session.execute("slowlog fast").startswith("usage:")
        assert session.execute("slowlog -1").startswith("usage:")

    def test_armed_but_empty(self, session):
        assert "armed" in session.execute("slowlog 5000")
        # Nothing crossed the threshold yet, so the log reports emptiness.
        assert "empty" in session.execute("slowlog")
