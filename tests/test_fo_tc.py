"""Tests for FO+TC formulas, evaluation, reachability, and the STC -> TC
translation (Lemma 3.3 / Theorem 3.3)."""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable
from repro.errors import FormulaError, TranslationError
from repro.fo_tc.evaluate import Structure, answers, holds
from repro.fo_tc.formulas import And, Compare, Exists, Forall, Not, Or, TCApp, count_tc_operators, is_existential, is_positive_tc, pred, tc
from repro.fo_tc.from_stc import stc_to_tc
from repro.fo_tc.reachability import (
    peak_frontier_size,
    tc_holds,
    tc_reachable_set,
    tc_relation,
)


@pytest.fixture
def chain():
    db = Database()
    db.add_facts("edge", [(f"n{i}", f"n{i+1}") for i in range(4)])
    return Structure.from_database(db)


X, Y, U, V = (Variable(n) for n in "XYUV")


class TestFOEvaluation:
    def test_atom(self, chain):
        assert holds(pred("edge", "n0", "n1"), chain)
        assert not holds(pred("edge", "n1", "n0"), chain)

    def test_connectives(self, chain):
        f = And(pred("edge", "n0", "n1"), Not(pred("edge", "n1", "n0")))
        assert holds(f, chain)
        assert holds(Or(pred("edge", "n9", "n0"), pred("edge", "n0", "n1")), chain)

    def test_exists(self, chain):
        assert holds(Exists([Y], pred("edge", "n0", Y)), chain)
        assert not holds(Exists([Y], pred("edge", "n4", Y)), chain)

    def test_forall(self, chain):
        # every node with an outgoing edge goes "up" the chain
        f = Forall([X], Or(Not(pred("edge", X, "n1")), Compare("==", X, "n0")))
        assert holds(f, chain)

    def test_comparison_mixed_types_fall_back(self):
        db = Database()
        db.add_facts("v", [(1,), ("a",)])
        structure = Structure.from_database(db)
        assert holds(
            Exists([X, Y], And(pred("v", X), pred("v", Y), Compare("!=", X, Y))),
            structure,
        )

    def test_unassigned_free_variable_raises(self, chain):
        with pytest.raises(FormulaError):
            holds(pred("edge", X, Y), chain)

    def test_answers(self, chain):
        result = answers(pred("edge", X, Y), chain, (X, Y))
        assert ("n0", "n1") in result
        assert len(result) == 4

    def test_answers_missing_variable_rejected(self, chain):
        with pytest.raises(FormulaError):
            answers(pred("edge", X, Y), chain, (X,))


class TestTCOperator:
    def test_reachability(self, chain):
        f = tc((U,), (V,), pred("edge", U, V), (X,), (Y,))
        result = answers(f, chain, (X, Y))
        assert ("n0", "n4") in result
        assert len(result) == 10

    def test_tc_is_one_or_more_steps(self, chain):
        f = tc((U,), (V,), pred("edge", U, V), ("n0",), ("n0",))
        assert not holds(f, chain)

    def test_tc_with_parameter(self, chain):
        # phi(u,v) = edge(u,v) and v != P : closure avoiding node P.
        P = Variable("P")
        phi = And(pred("edge", U, V), Compare("!=", V, P))
        f = tc((U,), (V,), phi, (X,), (Y,))
        result = answers(f, chain, (X, Y, P))
        assert ("n0", "n4", "n1") not in result  # path passes through n1
        assert ("n0", "n1", "n3") in result

    def test_tc_negated(self, chain):
        f = Not(tc((U,), (V,), pred("edge", U, V), ("n4",), ("n0",)))
        assert holds(f, chain)

    def test_tc_width_two(self):
        db = Database()
        db.add_facts("sg", [("a", "b", "c", "d"), ("c", "d", "e", "f")])
        structure = Structure.from_database(db)
        us = (Variable("U1"), Variable("U2"))
        vs = (Variable("V1"), Variable("V2"))
        f = tc(us, vs, pred("sg", *us, *vs), ("a", "b"), ("e", "f"))
        assert holds(f, structure)

    def test_tc_vector_validation(self):
        with pytest.raises(FormulaError):
            TCApp((U,), (U,), pred("e", U, U), (X,), (Y,))
        with pytest.raises(FormulaError):
            TCApp((U,), (V,), pred("e", U, V), (X, Y), (Y,))

    def test_substitution_capture_avoided(self):
        f = Exists([Y], pred("edge", X, Y))
        g = f.substitute({X: Y})  # Y must not be captured
        assert holds(
            g,
            Structure.from_database(
                Database.from_facts({"edge": [("a", "b")]})
            ),
            {Y: "a"},
        )

    def test_flags(self):
        inner = pred("edge", U, V)
        positive = tc((U,), (V,), inner, (X,), (Y,))
        assert is_positive_tc(positive)
        assert not is_positive_tc(Not(positive))
        assert is_existential(Exists([X], pred("p", X)))
        assert not is_existential(Not(pred("p", X)))
        assert count_tc_operators(And(positive, positive)) == 2


class TestReachabilityKernels:
    def edge_oracle(self, pairs):
        pairs = set(pairs)
        return lambda u, v: (u[0], v[0]) in pairs

    def test_tc_holds(self):
        edge = self.edge_oracle([("a", "b"), ("b", "c")])
        assert tc_holds(["a", "b", "c"], 1, ("a",), ("c",), edge)
        assert not tc_holds(["a", "b", "c"], 1, ("c",), ("a",), edge)

    def test_reachable_set(self):
        edge = self.edge_oracle([("a", "b"), ("b", "c")])
        assert tc_reachable_set(["a", "b", "c"], 1, ("a",), edge) == {("b",), ("c",)}

    def test_tc_relation_matches_holds(self):
        pairs = [("a", "b"), ("b", "c"), ("c", "a")]
        edge = self.edge_oracle(pairs)
        domain = ["a", "b", "c"]
        relation = tc_relation(domain, 1, edge)
        for u in domain:
            for v in domain:
                assert (((u,), (v,)) in relation) == tc_holds(
                    domain, 1, (u,), (v,), edge
                )

    def test_frontier_stays_small_on_chain(self):
        n = 40
        pairs = [(f"n{i}", f"n{i+1}") for i in range(n)]
        edge = self.edge_oracle(pairs)
        domain = [f"n{i}" for i in range(n + 1)]
        reached, peak = peak_frontier_size(domain, 1, ("n0",), edge)
        assert reached == n
        assert peak <= 2  # the NLOGSPACE flavour: frontier is O(1) on a chain


class TestSTCToTC:
    def test_tc_pair_becomes_tc_operator(self):
        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            """
        )
        queries = stc_to_tc(program)
        assert count_tc_operators(queries["tc"].formula) == 1

    def test_non_tc_recursion_rejected(self):
        with pytest.raises(TranslationError):
            stc_to_tc(
                parse_program(
                    """
                    sg(X, X) :- person(X).
                    sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
                    """
                )
            )

    def test_arithmetic_rejected(self):
        with pytest.raises(TranslationError):
            stc_to_tc(parse_program("p(Y) :- e(X), Y = X + 1."))

    @pytest.mark.parametrize(
        "program_text,edb",
        [
            (
                """
                tc(X, Y) :- e(X, Y).
                tc(X, Y) :- e(X, Z), tc(Z, Y).
                far(X, Y) :- tc(X, Y), not e(X, Y).
                """,
                {"e": [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]},
            ),
            (
                """
                two(X, Y) :- e(X, Z), e(Z, Y).
                t2(X, Y) :- two(X, Y).
                t2(X, Y) :- two(X, Z), t2(Z, Y).
                """,
                {"e": [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]},
            ),
            (
                """
                head(X) :- e(X, a).
                pick(X, Y) :- e(X, Y), head(X).
                """,
                {"e": [("a", "b"), ("b", "a"), ("c", "a")]},
            ),
        ],
    )
    def test_formula_matches_datalog(self, program_text, edb):
        program = parse_program(program_text)
        db = Database.from_facts(edb)
        expected = evaluate(program, db)
        structure = Structure.from_database(db)
        queries = stc_to_tc(program)
        for predicate, tc_query in queries.items():
            got = answers(tc_query.formula, structure, tc_query.parameters)
            assert got == set(expected.facts(predicate)), predicate

    def test_repeated_head_variables(self):
        program = parse_program("d(X, X) :- v(X).")
        db = Database.from_facts({"v": [("a",), ("b",)]})
        queries = stc_to_tc(program)
        structure = Structure.from_database(db)
        got = answers(queries["d"].formula, structure, queries["d"].parameters)
        assert got == {("a", "a"), ("b", "b")}

    def test_constants_in_head(self):
        program = parse_program("t(marker, X) :- v(X).")
        db = Database.from_facts({"v": [("a",), ("marker",)]})
        queries = stc_to_tc(program)
        structure = Structure.from_database(db)
        got = answers(queries["t"].formula, structure, queries["t"].parameters)
        assert got == {("marker", "a"), ("marker", "marker")}

    def test_instantiate_arity_checked(self):
        program = parse_program("p(X) :- v(X).")
        queries = stc_to_tc(program)
        with pytest.raises(TranslationError):
            queries["p"].instantiate(("a", "b"))


class TestQuantifierTCInterplay:
    def test_forall_over_tc(self, chain):
        # every node that reaches n4 does so via edges: trivially true;
        # check the universal evaluates over the whole active domain.
        f = Forall(
            [X],
            Or(
                Not(tc((U,), (V,), pred("edge", U, V), (X,), ("n4",))),
                tc((U,), (V,), pred("edge", U, V), (X,), ("n4",)),
            ),
        )
        assert holds(f, chain)

    def test_exists_binding_feeds_tc(self, chain):
        # some node X reaches n4 and has an edge out of n0 into it
        f = Exists(
            [X],
            And(
                pred("edge", "n0", X),
                tc((U,), (V,), pred("edge", U, V), (X,), ("n4",)),
            ),
        )
        assert holds(f, chain)

    def test_nested_tc_in_phi(self, chain):
        # TC whose step relation is itself a TC: edge+ composed = still edge+
        inner = tc((U,), (V,), pred("edge", U, V), (Variable("A"),), (Variable("B"),))
        outer = tc(
            (Variable("A"),), (Variable("B"),), inner, ("n0",), ("n4",)
        )
        assert holds(outer, chain)

    def test_structure_from_explicit_relations(self):
        structure = Structure(domain=["a", "b"], relations={"r": [("a", "b")]})
        assert holds(pred("r", "a", "b"), structure)
        assert not holds(pred("r", "b", "a"), structure)
