"""Tests for the graph data model: multigraphs, bridge, algorithms, closure."""

import pytest

from repro.datalog.database import Database
from repro.graphs.algorithms import (
    condensation,
    is_acyclic,
    reachable_from,
    shortest_path_lengths,
    strongly_connected_components,
    topological_sort,
)
from repro.graphs.bridge import (
    EdgeLabel,
    GraphSchema,
    PredicateShape,
    database_from_graph,
    graph_from_database,
    node_relation,
)
from repro.graphs.closure import (
    closure_methods,
    reflexive_transitive_closure,
    transitive_closure,
)
from repro.graphs.multigraph import LabeledMultigraph


class TestMultigraph:
    def test_parallel_edges_distinct(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("a", "b", "x")
        assert g.edge_count() == 2
        assert len(g.edge_triples()) == 1  # identities collapse in triples

    def test_adjacency_by_label(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("a", "c", "y")
        assert g.adjacency("x")["a"] == {"b"}
        assert g.adjacency()["a"] == {"b", "c"}

    def test_remove_edge_updates_indexes(self):
        g = LabeledMultigraph()
        e = g.add_edge("a", "b", "x")
        g.remove_edge(e)
        assert g.edge_count() == 0
        assert g.successors("a") == set()
        assert g.edges_with_label("x") == []

    def test_remove_node_cascades(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "c", "y")
        g.remove_node("b")
        assert g.edge_count() == 0
        assert not g.has_node("b")

    def test_isolated_nodes(self):
        g = LabeledMultigraph()
        g.add_node("lonely")
        g.add_edge("a", "b", "x")
        assert g.isolated_nodes() == {"lonely"}

    def test_subgraph(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        g.add_edge("b", "c", "y")
        sub = g.subgraph({"a", "b"})
        assert sub.edge_count() == 1
        assert sub.has_edge("a", "b", "x")

    def test_reverse(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        assert g.reverse().has_edge("b", "a", "x")

    def test_copy_independent(self):
        g = LabeledMultigraph()
        g.add_edge("a", "b", "x")
        clone = g.copy()
        clone.add_edge("b", "c", "y")
        assert g.edge_count() == 1

    def test_node_labels(self):
        g = LabeledMultigraph()
        g.add_node("a", label="capital")
        assert g.node_label("a") == "capital"
        g.set_node_label("a", "city")
        assert g.node_label("a") == "city"

    def test_equality_by_structure(self):
        g1 = LabeledMultigraph()
        g1.add_edge("a", "b", "x")
        g2 = LabeledMultigraph()
        g2.add_edge("a", "b", "x")
        assert g1 == g2


class TestBridge:
    def test_binary_predicate_becomes_edge(self):
        db = Database.from_facts({"knows": [("a", "b")]})
        g = graph_from_database(db)
        assert g.has_edge("a", "b", EdgeLabel("knows"))

    def test_unary_predicate_annotates_node(self):
        db = Database.from_facts({"knows": [("a", "b")], "vip": [("a",)]})
        g = graph_from_database(db)
        assert g.node_label("a") == frozenset({"vip"})

    def test_wide_predicate_extra_becomes_label_args(self):
        db = Database.from_facts({"flight": [("tor", "ott", 800, 900)]})
        g = graph_from_database(db)
        assert g.has_edge("tor", "ott", EdgeLabel("flight", (800, 900)))

    def test_roundtrip(self):
        db = Database.from_facts(
            {
                "knows": [("a", "b"), ("b", "c")],
                "vip": [("a",)],
                "flight": [("x", "y", 1)],
            }
        )
        back = database_from_graph(graph_from_database(db))
        assert back == db

    def test_custom_shape(self):
        schema = GraphSchema().declare("m", 2, 1, 0)
        db = Database.from_facts({"m": [("a", "b", "c")]})
        g = graph_from_database(db, schema)
        assert g.has_edge(("a", "b"), "c", EdgeLabel("m"))

    def test_shape_mismatch_raises(self):
        schema = GraphSchema().declare("m", 1, 1, 0)
        db = Database.from_facts({"m": [("a", "b", "c")]})
        with pytest.raises(ValueError):
            graph_from_database(db, schema)

    def test_shape_split_join_inverse(self):
        shape = PredicateShape(1, 2, 1)
        row = ("a", "b", "c", "w")
        assert shape.join(*shape.split(row)) == row

    def test_node_relation(self):
        db = Database.from_facts({"e": [("a", "b")]})
        node_relation(db)
        assert db.facts("node") == {("a",), ("b",)}


class TestAlgorithms:
    def test_scc(self):
        adjacency = {"a": {"b"}, "b": {"a", "c"}, "c": set()}
        comps = strongly_connected_components(adjacency)
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c"}) in comps

    def test_condensation_dag(self):
        adjacency = {"a": {"b"}, "b": {"a", "c"}, "c": set()}
        comps, cadj = condensation(adjacency)
        ab = comps.index(frozenset({"a", "b"}))
        c = comps.index(frozenset({"c"}))
        assert cadj[ab] == {c}

    def test_topological_sort(self):
        order = topological_sort({"a": {"b"}, "b": {"c"}, "c": set()})
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_sort_cycle_raises(self):
        with pytest.raises(ValueError):
            topological_sort({"a": {"b"}, "b": {"a"}})

    def test_is_acyclic(self):
        assert is_acyclic({"a": {"b"}})
        assert not is_acyclic({"a": {"a"}})

    def test_reachable_from(self):
        adjacency = {"a": {"b"}, "b": {"c"}, "c": set(), "d": {"a"}}
        assert reachable_from(adjacency, "a") == {"b", "c"}

    def test_shortest_path_lengths(self):
        adjacency = {"a": {"b"}, "b": {"c"}, "c": set()}
        assert shortest_path_lengths(adjacency, "a") == {"a": 0, "b": 1, "c": 2}


class TestClosureKernels:
    CASES = [
        set(),
        {("a", "b")},
        {("a", "b"), ("b", "c"), ("c", "d")},
        {("a", "b"), ("b", "a")},
        {("a", "b"), ("b", "c"), ("c", "a"), ("x", "y")},
        {(i, i + 1) for i in range(20)},
    ]

    @pytest.mark.parametrize("pairs", CASES, ids=range(len(CASES)))
    def test_kernels_agree(self, pairs):
        results = {m: transitive_closure(pairs, m) for m in closure_methods()}
        baseline = results["seminaive"]
        for method, result in results.items():
            assert result == baseline, method

    def test_chain_closure_size(self):
        pairs = {(i, i + 1) for i in range(10)}
        assert len(transitive_closure(pairs)) == 10 * 11 // 2

    def test_cycle_full(self):
        pairs = {("a", "b"), ("b", "c"), ("c", "a")}
        assert len(transitive_closure(pairs)) == 9

    def test_reflexive_variant(self):
        closure = reflexive_transitive_closure({("a", "b")}, nodes=["z"])
        assert ("z", "z") in closure
        assert ("a", "a") in closure
        assert ("a", "b") in closure

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            transitive_closure(set(), method="quantum")

    def test_agrees_with_networkx(self):
        import networkx as nx
        import random

        rng = random.Random(7)
        nodes = list(range(15))
        pairs = {
            (rng.choice(nodes), rng.choice(nodes)) for _ in range(40)
        }
        pairs = {(a, b) for a, b in pairs if a != b}
        g = nx.DiGraph(pairs)
        expected = set()
        for u in g:
            # one-or-more-step reachability (nx.descendants excludes u even
            # when u lies on a cycle through itself).
            for s in g.successors(u):
                expected.add((u, s))
                expected.update((u, v) for v in nx.descendants(g, s))
        assert transitive_closure(pairs) == expected
