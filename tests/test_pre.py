"""Tests for path regular expressions (Definition 2.8)."""

import pytest

from repro.core.pre import (
    Alternation,
    Closure,
    ComparisonPrimitive,
    Composition,
    Equality,
    Inequality,
    Inversion,
    Negation,
    Optional,
    Pred,
    Star,
    alt,
    closure,
    exported_variables,
    inverse,
    neg,
    optional,
    rel,
    seq,
    star,
    strip_outer_negation,
    validate_pre,
)
from repro.core.pre_parser import parse_pre
from repro.datalog.terms import Variable
from repro.errors import ParseError, RegexError


class TestConstruction:
    def test_operator_sugar(self):
        expr = rel("a") >> rel("b")
        assert isinstance(expr, Composition)
        expr = rel("a") | rel("b")
        assert isinstance(expr, Alternation)
        assert isinstance(-rel("a"), Inversion)
        assert isinstance(~rel("a"), Negation)

    def test_string_coercion(self):
        expr = seq("father", "friend")
        assert expr.left == Pred("father")

    def test_structural_equality(self):
        assert closure(rel("d")) == closure(rel("d"))
        assert closure(rel("d")) != closure(rel("e"))
        assert rel("m", "_") == rel("m", "_")

    def test_str_forms(self):
        assert str(closure(rel("descendant"))) == "descendant+"
        assert str(rel("mother", "_")) == "mother(_)"
        assert str(star(alt("father", rel("mother", "_")))) == "(father | mother(_))*"
        assert str(neg(closure("d"))) == "~(d+)"
        assert str(inverse("from")) == "-from"


class TestLabelVariables:
    def test_pred_exports_named_vars(self):
        assert rel("m", "H", "_").label_variables() == [Variable("H")]

    def test_closure_passes_through(self):
        assert closure(rel("m", "H")).label_variables() == [Variable("H")]

    def test_alternation_keeps_shared_only(self):
        expr = alt(rel("a", "X", "Y"), rel("b", "Y", "Z"))
        assert expr.label_variables() == [Variable("Y")]
        assert expr.ghost_variables() == {Variable("X"), Variable("Z")}

    def test_composition_unions(self):
        expr = seq(rel("a", "X"), rel("b", "Y"))
        assert expr.label_variables() == [Variable("X"), Variable("Y")]

    def test_star_exports_nothing(self):
        assert star(rel("m", "H")).label_variables() == []

    def test_optional_exports_nothing(self):
        assert optional(rel("m", "H")).label_variables() == []

    def test_exported_strips_negation(self):
        assert exported_variables(neg(rel("a", "X"))) == [Variable("X")]


class TestValidation:
    def test_outer_negation_ok(self):
        validate_pre(neg(closure("d")))

    def test_inner_negation_rejected(self):
        with pytest.raises(RegexError):
            validate_pre(seq("a", neg("b")))

    def test_double_negation_rejected(self):
        with pytest.raises(RegexError):
            validate_pre(neg(neg("a")))

    def test_ghost_escape_within_expression(self):
        # H is ghost of the alternation but used by the composed literal.
        expr = seq(alt(rel("a", "H"), rel("b")), rel("c", "H"))
        with pytest.raises(RegexError):
            validate_pre(expr)

    def test_no_false_positive_when_shared(self):
        expr = seq(alt(rel("a", "H"), rel("b", "H")), rel("c", "H"))
        validate_pre(expr)

    def test_strip_outer_negation(self):
        inner, positive = strip_outer_negation(neg("a"))
        assert not positive and inner == Pred("a")
        inner, positive = strip_outer_negation(rel("a"))
        assert positive


class TestParser:
    def test_closure(self):
        assert parse_pre("descendant+") == closure("descendant")

    def test_negated_closure(self):
        assert parse_pre("~descendant+") == neg(closure("descendant"))

    def test_bang_negation(self):
        assert parse_pre("!descendant+") == neg(closure("descendant"))

    def test_figure5_expression(self):
        expr = parse_pre("(father | mother(_))* friend")
        assert isinstance(expr, Composition)
        assert isinstance(expr.left, Star)

    def test_composition_juxtaposition_and_dot(self):
        assert parse_pre("a b") == parse_pre("a . b")

    def test_inversion_composition(self):
        expr = parse_pre("-from to")
        assert expr == seq(inverse("from"), "to")

    def test_precedence_alternation_lowest(self):
        expr = parse_pre("a b | c")
        assert isinstance(expr, Alternation)
        assert isinstance(expr.left, Composition)

    def test_postfix_stacking(self):
        expr = parse_pre("a+?")
        assert isinstance(expr, Optional)
        assert isinstance(expr.inner, Closure)

    def test_args_vs_group_disambiguation(self):
        # mother(_) is args; f (a | b) is composition.
        assert parse_pre("mother(_)") == rel("mother", "_")
        expr = parse_pre("f (a | b)")
        assert isinstance(expr, Composition)
        assert isinstance(expr.right, Alternation)

    def test_single_ident_in_parens_is_argument(self):
        # Documented choice: f(g) is a literal with constant argument g.
        expr = parse_pre("f(g)")
        assert expr == rel("f", "g")
        # Composition with a parenthesized literal uses an explicit dot.
        expr = parse_pre("f . (g)")
        assert isinstance(expr, Composition)

    def test_two_idents_in_parens_is_group(self):
        expr = parse_pre("f (g h)")
        assert isinstance(expr, Composition)
        assert isinstance(expr.right, Composition)

    def test_equality_primitives(self):
        assert parse_pre("=") == Equality()
        assert parse_pre("!=") == Inequality()

    def test_comparison_primitives(self):
        assert parse_pre("<") == ComparisonPrimitive("<")
        assert parse_pre(">=") == ComparisonPrimitive(">=")

    def test_arguments_mixed(self):
        expr = parse_pre("flight(cp, 3, X, _)")
        assert len(expr.args) == 4

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_pre("a |")
        with pytest.raises(ParseError):
            parse_pre("(a")
        with pytest.raises(ParseError):
            parse_pre("")

    def test_validates_on_parse(self):
        with pytest.raises(RegexError):
            parse_pre("a ~b")

    def test_walk_covers_all_nodes(self):
        expr = parse_pre("(a | b+) c?")
        kinds = {type(node).__name__ for node in expr.walk()}
        assert {"Composition", "Alternation", "Closure", "Optional", "Pred"} <= kinds
