"""Distributed tracing end to end: context adoption on the service, the
``trace_get``/``cluster_stats`` wire ops, router-side propagation and
assembly, replica poll stamping, subscription frame tagging, and the
cluster dashboard."""

import io
import time

import pytest

from repro.errors import ProtocolError
from repro.obs import context as trace_context
from repro.replication.router import RouterServer
from repro.service.client import ServiceClient
from repro.service.server import QueryService, ServiceConfig, ServiceServer
from repro.service.top import ClusterDashboard
from repro.ham.store import HAMStore

TC_PROGRAM = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y)."


def flights_store():
    store = HAMStore()
    session = store.session()
    with session.transaction() as txn:
        txn.add_edge("a", "b", "e")
        txn.add_edge("b", "c", "e")
    return store


def start_server(**config_kwargs):
    config_kwargs.setdefault("port", 0)
    return ServiceServer(config=ServiceConfig(**config_kwargs)).start_background()


class TestServiceAdoption:
    def test_incoming_context_adopted_and_echoed(self):
        service = QueryService(
            store=flights_store(), config=ServiceConfig(trace_sample=0.0)
        )
        body = service.execute(
            {
                "op": "datalog",
                "query": TC_PROGRAM,
                "trace": {"trace_id": "remote-trace-1", "sampled": True},
            }
        )
        assert body["trace_id"] == "remote-trace-1"
        entries = service.traces.find("remote-trace-1")
        assert entries, "sampled incoming context must record a trace"
        spans = entries[0]["spans"]
        assert spans[0]["name"] == "request"
        assert {s["name"] for s in spans} >= {"request", "evaluate"}

    def test_unsampled_context_adopts_id_without_spans(self):
        service = QueryService(
            store=flights_store(), config=ServiceConfig(trace_sample=0.0)
        )
        body = service.execute(
            {
                "op": "datalog",
                "query": TC_PROGRAM,
                "trace": {"trace_id": "remote-trace-2", "sampled": False},
            }
        )
        assert body["trace_id"] == "remote-trace-2"
        assert service.traces.find("remote-trace-2") == []

    def test_malformed_trace_rejected(self):
        service = QueryService(store=flights_store())
        with pytest.raises(ProtocolError):
            service.execute(
                {"op": "ping", "trace": {"trace_id": ""}}
            )

    def test_local_head_sampling_mints_trace(self):
        service = QueryService(
            store=flights_store(), config=ServiceConfig(trace_sample=1.0)
        )
        body = service.execute({"op": "datalog", "query": TC_PROGRAM})
        trace_id = body["trace_id"]
        assert trace_id
        assert service.traces.find(trace_id)

    def test_root_span_links_remote_parent(self):
        service = QueryService(
            store=flights_store(), config=ServiceConfig(trace_sample=0.0)
        )
        service.execute(
            {
                "op": "datalog",
                "query": TC_PROGRAM,
                "trace": {
                    "trace_id": "remote-trace-3",
                    "parent_span_id": "sender-s1",
                    "sampled": True,
                },
            }
        )
        spans = service.traces.find("remote-trace-3")[0]["spans"]
        assert spans[0]["parent_span_id"] == "sender-s1"


class TestTraceGetOp:
    def test_ring_source(self):
        service = QueryService(
            store=flights_store(), config=ServiceConfig(trace_sample=1.0)
        )
        trace_id = service.execute({"op": "datalog", "query": TC_PROGRAM})["trace_id"]
        result = service.execute({"op": "trace_get", "trace_id": trace_id})["result"]
        assert result["found"] is True
        assert result["source"] == "ring"
        assert result["node_id"] == service.node_id
        assert all(s["node_id"] == service.node_id for s in result["spans"])

    def test_slowlog_fallback_when_ring_evicted(self):
        service = QueryService(
            store=flights_store(),
            config=ServiceConfig(trace_sample=1.0, trace_ring_size=1, slow_ms=0.0),
        )
        trace_id = service.execute({"op": "datalog", "query": TC_PROGRAM})["trace_id"]
        # Evict the ring entry with a later traced request.
        service.execute({"op": "rpq", "query": "e+"})
        result = service.execute({"op": "trace_get", "trace_id": trace_id})["result"]
        assert result["found"] is True
        assert result["source"] == "slowlog"

    def test_missing_trace_not_found(self):
        service = QueryService(store=flights_store())
        result = service.execute({"op": "trace_get", "trace_id": "nope"})["result"]
        assert result["found"] is False
        assert result["spans"] == []

    def test_trace_id_validated(self):
        service = QueryService(store=flights_store())
        with pytest.raises(ProtocolError):
            service.execute({"op": "trace_get"})
        with pytest.raises(ProtocolError):
            service.execute({"op": "trace_get", "trace_id": 7})

    def test_cluster_stats_rejected_on_a_node(self):
        service = QueryService(store=flights_store())
        with pytest.raises(ProtocolError):
            service.execute({"op": "cluster_stats"})

    def test_slowlog_entries_carry_trace_id(self):
        service = QueryService(
            store=flights_store(), config=ServiceConfig(slow_ms=0.0)
        )
        body = service.execute(
            {
                "op": "datalog",
                "query": TC_PROGRAM,
                "trace": {"trace_id": "slow-trace", "sampled": True},
            }
        )
        assert body["trace_id"] == "slow-trace"
        entries = service.slowlog.snapshot()
        assert entries[-1]["trace_id"] == "slow-trace"


@pytest.fixture
def traced_cluster():
    """Primary + replica + router, everything tracing at rate 1."""
    primary = start_server(trace_sample=1.0, slow_ms=None)
    address = f"127.0.0.1:{primary.port}"
    replica = start_server(
        replica_of=address,
        repl_wait_ms=200,
        version_wait_ms=500,
        trace_sample=1.0,
    )
    replica.service.applier.wait_ready(5)
    router = RouterServer(
        address, [f"127.0.0.1:{replica.port}"], port=0, trace_sample=1.0
    ).start()
    client = ServiceClient(host="127.0.0.1", port=router.port)
    try:
        yield primary, replica, router, client
    finally:
        client.close()
        router.stop()
        replica.stop()
        primary.stop()


class TestRouterPropagation:
    def test_one_trace_spans_router_and_backend(self, traced_cluster):
        primary, replica, router, client = traced_cluster
        client.update(edges=[["a", "e", "b"], ["b", "e", "c"]])
        response = client.call("datalog", query=TC_PROGRAM)
        trace_id = response["trace_id"]
        assert trace_id
        result = client.trace_get(trace_id)
        assert result["found"] is True
        node_ids = {span["node_id"] for span in result["spans"]}
        assert router.node_id in node_ids
        assert len(node_ids) >= 2, "router and at least one backend must appear"
        names = {span["name"] for span in result["spans"]}
        assert {"route", "route.forward", "request"} <= names
        # Every span belongs to the one trace: the forward span is the
        # parent of the backend's request root.
        by_id = {span["span_id"]: span for span in result["spans"]}
        request_roots = [s for s in result["spans"] if s["name"] == "request"]
        assert request_roots
        for root in request_roots:
            parent = by_id.get(root["parent_span_id"])
            assert parent is not None and parent["name"] == "route.forward"

    def test_client_originated_context_wins(self, traced_cluster):
        primary, replica, router, client = traced_cluster
        with trace_context.start(trace_id="client-trace-9", sampled=True):
            response = client.call("ping")
        assert response["trace_id"] == "client-trace-9"
        result = client.trace_get("client-trace-9")
        assert result["found"] is True

    def test_cluster_stats_merges_nodes(self, traced_cluster):
        primary, replica, router, client = traced_cluster
        client.update(edges=[["a", "e", "b"]])
        client.call("datalog", query=TC_PROGRAM)
        doc = client.cluster_stats()
        assert doc["router"]["node_id"] == router.node_id
        roles = {node["role"] for node in doc["nodes"]}
        assert roles == {"primary", "replica"}
        assert all(node["ok"] for node in doc["nodes"])
        assert doc["aggregate"]["nodes_ok"] == 2
        node_ids = {node["node_id"] for node in doc["nodes"]}
        assert len(node_ids) == 2
        # The replica reports epoch + lag; merged latency has real counts.
        replica_row = next(n for n in doc["nodes"] if n["role"] == "replica")
        assert replica_row["epoch"] is not None
        assert replica_row["lag_versions"] is not None
        latency = doc["aggregate"]["latency"]
        assert latency and all(entry["count"] >= 1 for entry in latency.values())

    def test_cluster_stats_marks_dead_node(self, traced_cluster):
        primary, replica, router, client = traced_cluster
        replica.stop()
        doc = client.cluster_stats()
        down = [node for node in doc["nodes"] if not node["ok"]]
        assert len(down) == 1
        assert "error" in down[0]
        assert doc["aggregate"]["nodes_ok"] == 1

    def test_replica_poll_traces_link_to_primary(self, traced_cluster):
        primary, replica, router, client = traced_cluster
        client.update(edges=[["x", "e", "y"]])
        deadline = time.monotonic() + 5
        entry = None
        while time.monotonic() < deadline:
            entries = [
                e
                for e in replica.service.traces.snapshot()
                if e.get("op") in ("repl.poll", "repl.bootstrap")
            ]
            if entries:
                entry = entries[-1]
                break
            time.sleep(0.05)
        assert entry is not None, "replica applier must record sampled polls"
        # The primary served that poll under the same trace id.
        result = client.trace_get(entry["trace_id"])
        node_ids = {span["node_id"] for span in result["spans"]}
        assert replica.service.node_id in node_ids
        assert primary.service.node_id in node_ids

    def test_cluster_dashboard_renders(self, traced_cluster):
        primary, replica, router, client = traced_cluster
        client.update(edges=[["a", "e", "b"]])
        out = io.StringIO()
        dashboard = ClusterDashboard(client, out=out)
        first = dashboard.tick()
        assert "repro top --cluster" in first
        assert "primary" in first and "replica" in first
        assert "cluster latency (merged)" in first
        snapshot = dashboard.snapshot()
        assert snapshot["cluster"]["aggregate"]["nodes_total"] == 2
        assert set(snapshot["qps"]) == {
            node["address"] for node in snapshot["cluster"]["nodes"]
        }


class TestSubscriptionTraceTag:
    def test_delta_frame_carries_commit_trace_id(self):
        primary = start_server(trace_sample=0.0, version_wait_ms=500)
        subscriber = ServiceClient(host="127.0.0.1", port=primary.port)
        writer = ServiceClient(host="127.0.0.1", port=primary.port)
        try:
            writer.update(edges=[["a", "e", "b"]])
            handle = subscriber.subscribe("tc(X,Y) :- e(X,Y).", target="datalog")
            with trace_context.start(trace_id="commit-trace-1", sampled=True):
                writer.update(edges=[["b", "e", "c"]])
            event = handle.next_event(timeout=5)
            assert event["type"] == "delta"
            assert event["trace_id"] == "commit-trace-1"
        finally:
            subscriber.close()
            writer.close()
            primary.stop()
