"""Tests for the textual Datalog parser and the shared lexer."""

import pytest

from repro.datalog.ast import ArithmeticAssign, Comparison, Literal
from repro.datalog.lexer import tokenize
from repro.datalog.parser import parse_atom, parse_program, parse_rule
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError


class TestLexer:
    def test_kinds(self):
        tokens = tokenize("p(X, ann, 3, 'Hi') :- q.")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "ident", "punct", "var", "punct", "ident", "punct", "number",
            "punct", "string", "punct", "punct", "ident", "punct", "eof",
        ]

    def test_hyphenated_identifier(self):
        tokens = tokenize("not-desc-of")
        assert tokens[0].kind == "ident"
        assert tokens[0].text == "not-desc-of"

    def test_hyphen_then_bracket_is_punct(self):
        tokens = tokenize("a -[b]")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["a", "-", "[", "b", "]"]

    def test_line_comments(self):
        tokens = tokenize("p. % comment\nq. # another")
        idents = [t.text for t in tokens if t.kind == "ident"]
        assert idents == ["p", "q"]

    def test_block_comment(self):
        tokens = tokenize("p /* hi\nthere */ q")
        idents = [t.text for t in tokens if t.kind == "ident"]
        assert idents == ["p", "q"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("p('oops)")

    def test_unterminated_comment(self):
        with pytest.raises(ParseError):
            tokenize("p /* oops")

    def test_float(self):
        tokens = tokenize("3.25")
        assert tokens[0].value == 3.25

    def test_positions(self):
        tokens = tokenize("p\nq")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 1)

    def test_string_escape(self):
        tokens = tokenize(r"'a\'b'")
        assert tokens[0].value == "a'b"


class TestParseAtom:
    def test_simple(self):
        a = parse_atom("parent(X, ann)")
        assert a.predicate == "parent"
        assert a.args == (Variable("X"), Constant("ann"))

    def test_zero_ary(self):
        assert parse_atom("go").arity == 0

    def test_negative_number(self):
        assert parse_atom("p(-3)").args == (Constant(-3),)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("p(X) extra")


class TestParseRule:
    def test_fact(self):
        r = parse_rule("parent(ann, bob).")
        assert r.is_fact

    def test_rule(self):
        r = parse_rule("anc(X, Y) :- parent(X, Z), anc(Z, Y).")
        assert len(r.body) == 2
        assert r.head.predicate == "anc"

    def test_negation_keyword(self):
        r = parse_rule("p(X) :- q(X), not r(X).")
        assert r.body[1].negative

    def test_negation_punct(self):
        for form in ("p(X) :- q(X), ~r(X).", "p(X) :- q(X), !r(X)."):
            r = parse_rule(form)
            assert r.body[1].negative

    def test_comparison(self):
        r = parse_rule("p(X) :- q(X), X < 10.")
        c = r.body[1]
        assert isinstance(c, Comparison)
        assert c.op == "<"

    def test_equality_single_equals(self):
        r = parse_rule("p(X) :- q(X, Y), X = Y.")
        assert r.body[1].op == "=="

    def test_arithmetic(self):
        r = parse_rule("p(Y) :- q(X), Y = X + 1.")
        a = r.body[1]
        assert isinstance(a, ArithmeticAssign)
        assert a.op == "+"

    def test_arithmetic_min(self):
        r = parse_rule("p(Z) :- q(X), r(Y), Z = min(X, Y).")
        a = r.body[2]
        assert isinstance(a, ArithmeticAssign)
        assert a.op == "min"

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X)")

    def test_propositional_atom_in_body(self):
        r = parse_rule("p(X) :- q(X), flag.")
        assert isinstance(r.body[1], Literal)
        assert r.body[1].predicate == "flag"


class TestParseProgram:
    def test_multiple_rules(self):
        p = parse_program(
            """
            anc(X, Y) :- parent(X, Y).
            anc(X, Y) :- parent(X, Z), anc(Z, Y).
            parent(ann, bob).
            """
        )
        assert len(p) == 3
        assert p.idb_predicates == {"anc", "parent"}

    def test_hyphenated_predicates(self):
        p = parse_program("not-desc-of(X) :- some-rel(X).")
        assert p.idb_predicates == {"not-desc-of"}

    def test_empty_program(self):
        assert len(parse_program("  % nothing\n")) == 0

    def test_roundtrip_through_str(self):
        source = "anc(X, Y) :- parent(X, Z), anc(Z, Y)."
        p = parse_program(source)
        assert parse_program(str(p)) == p
