"""Unit tests for the Datalog AST."""

import pytest

from repro.datalog.ast import (
    ArithmeticAssign,
    Atom,
    Comparison,
    Literal,
    Program,
    Rule,
    atom,
    fact,
    lit,
    neglit,
    rule,
)
from repro.datalog.terms import Constant, Variable
from repro.errors import ArityError


class TestAtom:
    def test_args_coerced(self):
        a = Atom("p", ("X", "ann", 3))
        assert a.args == (Variable("X"), Constant("ann"), Constant(3))

    def test_arity(self):
        assert Atom("p", ("X", "Y")).arity == 2
        assert Atom("p").arity == 0

    def test_variables(self):
        a = Atom("p", ("X", "ann", "X"))
        assert a.variables() == {Variable("X")}

    def test_is_ground(self):
        assert Atom("p", ("ann", 3)).is_ground()
        assert not Atom("p", ("X",)).is_ground()

    def test_substitute(self):
        a = Atom("p", ("X", "Y"))
        b = a.substitute({Variable("X"): Constant("ann")})
        assert b == Atom("p", ("ann", "Y"))

    def test_substitute_leaves_unbound(self):
        a = Atom("p", ("X",))
        assert a.substitute({}) == a

    def test_str(self):
        assert str(Atom("p", ("X", "ann"))) == "p(X, ann)"
        assert str(Atom("q")) == "q"


class TestLiteral:
    def test_negate(self):
        l = lit("p", "X")
        assert l.negate().negative
        assert l.negate().negate() == l

    def test_str(self):
        assert str(neglit("p", "X")) == "not p(X)"

    def test_wraps_atom_only(self):
        with pytest.raises(TypeError):
            Literal("p")


class TestComparison:
    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Comparison("~~", "X", "Y")

    def test_variables(self):
        c = Comparison("<", "X", 3)
        assert c.variables() == {Variable("X")}

    def test_substitute(self):
        c = Comparison("<", "X", "Y")
        c2 = c.substitute({Variable("X"): Constant(1)})
        assert c2.left == Constant(1)
        assert c2.right == Variable("Y")


class TestArithmetic:
    def test_input_variables(self):
        a = ArithmeticAssign("Z", "+", "X", 1)
        assert a.input_variables() == {Variable("X")}
        assert a.variables() == {Variable("Z"), Variable("X")}

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            ArithmeticAssign("Z", "**", "X", "Y")

    def test_str_function_style(self):
        assert str(ArithmeticAssign("Z", "max", "X", "Y")) == "Z = max(X, Y)"


class TestRule:
    def test_fact_detection(self):
        assert fact("p", "ann").is_fact
        assert not rule(atom("p", "X"), lit("q", "X")).is_fact

    def test_fact_requires_ground(self):
        with pytest.raises(ValueError):
            fact("p", "X")

    def test_body_partition(self):
        r = rule(
            atom("h", "X"),
            lit("p", "X"),
            neglit("q", "X"),
            Comparison("<", "X", 3),
        )
        assert len(r.positive_literals()) == 1
        assert len(r.negative_literals()) == 1
        assert len(r.builtins()) == 1

    def test_body_predicates(self):
        r = rule(atom("h", "X"), lit("p", "X"), neglit("q", "X"))
        assert r.body_predicates() == {"p", "q"}

    def test_rename_variables(self):
        r = rule(atom("h", "X"), lit("p", "X", "Y"))
        renamed = r.rename_variables("_1")
        assert renamed.head.args[0] == Variable("X_1")
        assert renamed.body[0].atom.args == (Variable("X_1"), Variable("Y_1"))

    def test_str_roundtrippable_shape(self):
        r = rule(atom("h", "X"), lit("p", "X"))
        assert str(r) == "h(X) :- p(X)."

    def test_rejects_non_body_literal(self):
        with pytest.raises(TypeError):
            Rule(atom("h", "X"), [atom("p", "X")])


class TestProgram:
    def test_idb_edb_split(self):
        p = Program([rule(atom("h", "X"), lit("p", "X"))])
        assert p.idb_predicates == {"h"}
        assert p.edb_predicates == {"p"}

    def test_arity_check_on_init(self):
        with pytest.raises(ArityError):
            Program(
                [
                    rule(atom("h", "X"), lit("p", "X")),
                    rule(atom("h", "X", "Y"), lit("p", "X", "Y")),
                ]
            )

    def test_arity_check_on_add(self):
        p = Program([rule(atom("h", "X"), lit("p", "X"))])
        with pytest.raises(ArityError):
            p.add(rule(atom("g", "X"), lit("p", "X", "Y")))

    def test_rules_for(self):
        p = Program(
            [
                rule(atom("h", "X"), lit("p", "X")),
                rule(atom("h", "X"), lit("q", "X")),
                rule(atom("g", "X"), lit("h", "X")),
            ]
        )
        assert len(p.rules_for("h")) == 2
        assert len(p.rules_for("g")) == 1

    def test_arity_of(self):
        p = Program([rule(atom("h", "X", "Y"), lit("p", "X", "Y"))])
        assert p.arity_of("h") == 2
        assert p.arity_of("p") == 2
        with pytest.raises(KeyError):
            p.arity_of("missing")

    def test_concatenation(self):
        p1 = Program([rule(atom("h", "X"), lit("p", "X"))])
        p2 = Program([rule(atom("g", "X"), lit("h", "X"))])
        assert len(p1 + p2) == 2

    def test_pretty_groups_by_head(self):
        p = Program(
            [
                rule(atom("a", "X"), lit("e", "X")),
                rule(atom("b", "X"), lit("e", "X")),
                rule(atom("a", "X"), lit("f", "X")),
            ]
        )
        text = p.pretty()
        assert text.index("a(X) :- e(X).") < text.index("a(X) :- f(X).") < text.index("b(X)")
