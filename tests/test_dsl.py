"""Tests for the textual GraphLog DSL."""

import pytest

from repro.core.dsl import parse_graphical_query, parse_query_graph
from repro.core.pre import closure, neg
from repro.datalog.terms import Constant, Variable
from repro.errors import DependenceCycleError, ParseError, QueryGraphError


FIG2 = """
define (P1) -[not-desc-of(P2)]-> (P3) {
    (P1) -[descendant+]-> (P3);
    (P2) -[~descendant+]-> (P3);
    person(P2);
}
"""


class TestSingleGraph:
    def test_figure2_shape(self):
        g = parse_query_graph(FIG2)
        assert g.head_predicate == "not-desc-of"
        assert len(g.edges) == 2
        assert len(g.annotations) == 1
        assert g.distinguished_edge.extra == (Variable("P2"),)

    def test_edge_labels(self):
        g = parse_query_graph(FIG2)
        assert g.edges[0].pre == closure("descendant")
        assert g.edges[1].pre == neg(closure("descendant"))

    def test_reverse_arrow(self):
        g = parse_query_graph(
            """
            define (C) -[origin]-> (F) {
                (C) <-[from]- (F);
            }
            """
        )
        edge = g.edges[0]
        assert edge.source == (Variable("F"),)
        assert edge.target == (Variable("C"),)

    def test_edge_chain(self):
        g = parse_query_graph(
            """
            define (X) -[out]-> (Z) {
                (X) -[a]-> (Y) -[b]-> (Z);
            }
            """
        )
        assert len(g.edges) == 2
        assert g.edges[0].target == g.edges[1].source

    def test_multi_term_nodes(self):
        g = parse_query_graph(
            """
            define (X, Y) -[out]-> (U, V) {
                (X, Y) -[sg+]-> (U, V);
            }
            """
        )
        assert g.edges[0].pre == closure("sg")
        assert g.distinguished_edge.arity == 4

    def test_constant_node(self):
        g = parse_query_graph(
            """
            define (P) -[tor]-> (P) {
                (P) -[residence]-> (toronto);
            }
            """
        )
        assert (Constant("toronto"),) in g.nodes

    def test_negated_annotation(self):
        g = parse_query_graph(
            """
            define (X) -[out]-> (X) {
                (X) -[e]-> (Y);
                ~vip(X);
            }
            """
        )
        assert not g.annotations[0].positive

    def test_trailing_semicolon_optional(self):
        g = parse_query_graph(
            "define (X) -[o]-> (Y) { (X) -[e]-> (Y) }"
        )
        assert len(g.edges) == 1

    def test_validation_runs(self):
        with pytest.raises(QueryGraphError):
            parse_query_graph("define (X) -[o]-> (Y) { }")


class TestMultipleGraphs:
    def test_two_defines(self):
        q = parse_graphical_query(
            """
            define (F1) -[feasible]-> (F2) {
                (F1) -[leg]-> (F2);
            }
            define (C1) -[conn]-> (C2) {
                (C1) -[feasible+]-> (C2);
            }
            """
        )
        assert len(q) == 2
        assert q.idb_predicates == {"feasible", "conn"}

    def test_cycle_detected(self):
        with pytest.raises(DependenceCycleError):
            parse_graphical_query(
                """
                define (X) -[a]-> (Y) { (X) -[b]-> (Y); }
                define (X) -[b]-> (Y) { (X) -[a]-> (Y); }
                """
            )

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse_graphical_query("   ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query_graph(FIG2 + " extra tokens")

    def test_comments_allowed(self):
        q = parse_graphical_query(
            """
            % the figure 2 query
            define (P1) -[d]-> (P3) {
                (P1) -[descendant+]-> (P3);  # a comment
            }
            """
        )
        assert len(q) == 1


class TestRoundTrip:
    def test_render_then_parse(self):
        from repro.visual.ascii_art import render_graphical_query

        q = parse_graphical_query(FIG2)
        text = render_graphical_query(q)
        q2 = parse_graphical_query(text)
        assert q2.idb_predicates == q.idb_predicates
        assert len(q2.graphs[0].edges) == len(q.graphs[0].edges)
        assert q2.graphs[0].edges[0].pre == q.graphs[0].edges[0].pre
