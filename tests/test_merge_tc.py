"""Tests for merging independent transitive closures (Theorem 3.4 flavour)."""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.errors import TranslationError
from repro.translation.merge_tc import count_tc_pairs, merge_independent_closures

TWO_INDEPENDENT = """
reach-a(X, Y) :- ea(X, Y).
reach-a(X, Y) :- ea(X, Z), reach-a(Z, Y).
reach-b(X, Y) :- eb(X, Y).
reach-b(X, Y) :- eb(X, Z), reach-b(Z, Y).
both(X, Y) :- reach-a(X, Y), reach-b(X, Y).
"""

STACKED = """
t0(X, Y) :- e(X, Y).
t0(X, Y) :- e(X, Z), t0(Z, Y).
t1(X, Y) :- t0(X, Y).
t1(X, Y) :- t0(X, Z), t1(Z, Y).
"""


def sample_db():
    db = Database()
    db.add_facts("ea", [("a", "b"), ("b", "c"), ("x", "y")])
    db.add_facts("eb", [("a", "b"), ("c", "d"), ("b", "c")])
    return db


class TestMerge:
    def test_two_closures_become_one(self):
        program = parse_program(TWO_INDEPENDENT)
        assert count_tc_pairs(program) == 2
        result = merge_independent_closures(program)
        assert result.merged == {"reach-a", "reach-b"}
        assert count_tc_pairs(result.program) == 1

    def test_merged_program_equivalent(self):
        program = parse_program(TWO_INDEPENDENT)
        result = merge_independent_closures(program)
        db = sample_db()
        original = evaluate(program, db)
        merged = evaluate(result.program, db)
        for predicate in ("reach-a", "reach-b", "both"):
            assert original.facts(predicate) == merged.facts(predicate), predicate

    def test_no_cross_component_leakage(self):
        # ea and eb share nodes; tagging must keep the closures apart.
        program = parse_program(TWO_INDEPENDENT)
        result = merge_independent_closures(program)
        db = sample_db()
        merged = evaluate(result.program, db)
        # a ->ea b ->eb c would be a leaked mixed path.
        assert ("x", "c") not in merged.facts("reach-a")
        assert ("a", "d") not in merged.facts("reach-a")
        assert ("a", "d") in merged.facts("reach-b")  # within eb alone: a->b->c->d

    def test_different_arities_merge(self):
        program = parse_program(
            """
            t2(X1, X2, Y1, Y2) :- wide(X1, X2, Y1, Y2).
            t2(X1, X2, Y1, Y2) :- wide(X1, X2, Z1, Z2), t2(Z1, Z2, Y1, Y2).
            t1(X, Y) :- narrow(X, Y).
            t1(X, Y) :- narrow(X, Z), t1(Z, Y).
            """
        )
        result = merge_independent_closures(program)
        assert result.merged == {"t1", "t2"}
        db = Database()
        db.add_facts("wide", [("a", "b", "c", "d"), ("c", "d", "e", "f")])
        db.add_facts("narrow", [("1", "2"), ("2", "3")])
        merged = evaluate(result.program, db)
        original = evaluate(program, db)
        assert merged.facts("t1") == original.facts("t1")
        assert merged.facts("t2") == original.facts("t2")

    def test_stacked_closures_skipped(self):
        program = parse_program(STACKED)
        result = merge_independent_closures(program)
        # t1's base depends on t0's closure: cannot merge without ordering.
        assert result.merged == set()
        assert result.skipped == {"t0", "t1"}
        assert result.program is program

    def test_mixed_independent_and_stacked(self):
        program = parse_program(STACKED + TWO_INDEPENDENT)
        result = merge_independent_closures(program)
        # t0's base is plain EDB, so it merges; t1 is stacked on t0's
        # closure and must stay a separate TC pair.
        assert result.merged == {"reach-a", "reach-b", "t0"}
        assert result.skipped == {"t1"}
        db = sample_db()
        db.add_facts("e", [("p", "q"), ("q", "r")])
        original = evaluate(program, db)
        merged = evaluate(result.program, db)
        for predicate in ("reach-a", "reach-b", "both", "t0", "t1"):
            assert original.facts(predicate) == merged.facts(predicate), predicate

    def test_single_closure_untouched(self):
        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            """
        )
        result = merge_independent_closures(program)
        assert result.program is program
        assert result.merged == set()

    def test_non_tc_recursion_rejected(self):
        with pytest.raises(TranslationError):
            merge_independent_closures(
                parse_program(
                    """
                    sg(X, X) :- person(X).
                    sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
                    """
                )
            )

    def test_composes_with_algorithm31(self):
        # SL program with two recursions -> Alg 3.1 -> merge -> 1 TC pair.
        from repro.translation.sl_to_stc import prepare_adom, sl_to_stc

        program = parse_program(
            """
            anc(X, Y) :- parent(X, Y).
            anc(X, Y) :- parent(X, Z), anc(Z, Y).
            boss(X, Y) :- manages(X, Y).
            boss(X, Y) :- manages(X, Z), boss(Z, Y).
            """
        )
        stc = sl_to_stc(program, use_predicate_name_signatures=False)
        assert count_tc_pairs(stc.program) == 2
        merged = merge_independent_closures(stc.program)
        assert count_tc_pairs(merged.program) == 1
        db = Database()
        db.add_facts("parent", [("a", "b"), ("b", "c")])
        db.add_facts("manages", [("x", "y"), ("y", "z")])
        prepared = prepare_adom(db)
        original = evaluate(program, db)
        via_merged = evaluate(merged.program, prepared)
        assert original.facts("anc") == via_merged.facts("anc")
        assert original.facts("boss") == via_merged.facts("boss")
