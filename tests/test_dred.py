"""Tests for delete-and-rederive maintenance (repro.datalog.dred).

Unit tests pin down the two maintenance modes (support counting for
non-recursive groups, DRed overdelete/rederive for recursive ones) on
hand-built programs; the differential tests then hammer the whole thing
with random stratified programs and random insert/delete sequences,
comparing every maintained database against a from-scratch evaluation.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datalog.database import Database
from repro.datalog.dred import (
    MaintenancePlan,
    evaluate_with_counts,
)
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.graphs.bridge import EdgeLabel
from repro.ham.store import HAMStore
from repro.ham.views import ViewManager
from repro.translation.differential import random_database, random_sl_program

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- e(X, Y), tc(Y, Z).
    """
)


def edb_arities(program):
    """``{edb_predicate: arity}`` for every base predicate a body reads."""
    idb = program.idb_predicates
    arities = {}
    for rule in program.rules:
        for literal in rule.body:
            atom = getattr(literal, "atom", None)
            if atom is not None and atom.predicate not in idb:
                arities[atom.predicate] = atom.arity
    return arities


def snapshot(database, predicates):
    return {p: frozenset(database.facts(p)) for p in predicates}


class TestCountingMode:
    PROGRAM = parse_program(
        """
        hop(X, Y) :- e(X, Y).
        two(X, Z) :- e(X, Y), e(Y, Z).
        """
    )

    def test_nonrecursive_groups_use_counting(self):
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        plan, database, counts = evaluate_with_counts(self.PROGRAM, edb)
        stats = plan.maintain(database, {"e": [("c", "d")]}, None, counts)
        assert stats.counting_groups > 0
        assert stats.dred_groups == 0
        assert ("c", "d") in database.facts("hop")
        assert ("b", "d") in database.facts("two")

    def test_shared_derivations_survive_single_deletion(self):
        # two("a","c") is derivable through b and through x: deleting one
        # path decrements the support count but must not delete the fact.
        edb = Database.from_facts(
            {"e": [("a", "b"), ("b", "c"), ("a", "x"), ("x", "c")]}
        )
        plan, database, counts = evaluate_with_counts(self.PROGRAM, edb)
        plan.maintain(database, None, {"e": [("a", "b")]}, counts)
        assert ("a", "c") in database.facts("two")
        plan.maintain(database, None, {"e": [("a", "x")]}, counts)
        assert ("a", "c") not in database.facts("two")

    def test_counting_matches_recompute(self):
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c"), ("c", "a")]})
        plan, database, counts = evaluate_with_counts(self.PROGRAM, edb)
        plan.maintain(
            database, {"e": [("c", "d")]}, {"e": [("a", "b")]}, counts
        )
        expected = Engine(check_safety=False).evaluate(
            self.PROGRAM,
            Database.from_facts({"e": [("b", "c"), ("c", "a"), ("c", "d")]}),
        )
        predicates = ("e", "hop", "two")
        assert snapshot(database, predicates) == snapshot(expected, predicates)


class TestDRedTransitiveClosure:
    def test_recursive_group_takes_dred_path(self):
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        plan, database, counts = evaluate_with_counts(TC, edb)
        stats = plan.maintain(database, None, {"e": [("b", "c")]}, counts)
        assert stats.dred_groups > 0
        assert stats.overdeleted > 0
        assert set(database.facts("tc")) == {("a", "b")}

    def test_alternative_path_rederives(self):
        # a -> b -> d and a -> c -> d: deleting a->b overdeletes tc(a, d),
        # which the rederivation phase must bring back via c.
        edb = Database.from_facts(
            {"e": [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]}
        )
        plan, database, counts = evaluate_with_counts(TC, edb)
        stats = plan.maintain(database, None, {"e": [("a", "b")]}, counts)
        assert stats.rederived > 0
        assert ("a", "d") in database.facts("tc")
        assert ("a", "b") not in database.facts("tc")

    def test_insert_then_delete_roundtrip(self):
        edb = Database.from_facts({"e": [("a", "b")]})
        plan, database, counts = evaluate_with_counts(TC, edb)
        before = snapshot(database, ("e", "tc"))
        plan.maintain(database, {"e": [("b", "c")]}, None, counts)
        assert ("a", "c") in database.facts("tc")
        plan.maintain(database, None, {"e": [("b", "c")]}, counts)
        assert snapshot(database, ("e", "tc")) == before

    def test_cycle_deletion(self):
        edb = Database.from_facts({"e": [("a", "b"), ("b", "a")]})
        plan, database, counts = evaluate_with_counts(TC, edb)
        plan.maintain(database, None, {"e": [("b", "a")]}, counts)
        expected = Engine(check_safety=False).evaluate(
            TC, Database.from_facts({"e": [("a", "b")]})
        )
        assert snapshot(database, ("e", "tc")) == snapshot(expected, ("e", "tc"))


class TestStratifiedNegation:
    PROGRAM = parse_program(
        """
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- e(X, Y), tc(Y, Z).
        broken(X, Y) :- e(X, Y), not ok(X).
        ok(X) :- good(X).
        """
    )

    def _full(self, e_facts, good_facts):
        return Engine(check_safety=False).evaluate(
            self.PROGRAM, Database.from_facts({"e": e_facts, "good": good_facts})
        )

    def test_negated_support_gained_retracts(self):
        edb = Database.from_facts({"e": [("a", "b")], "good": []})
        plan, database, counts = evaluate_with_counts(self.PROGRAM, edb)
        assert ("a", "b") in database.facts("broken")
        plan.maintain(database, {"good": [("a",)]}, None, counts)
        assert ("a", "b") not in database.facts("broken")

    def test_negated_support_lost_derives(self):
        edb = Database.from_facts({"e": [("a", "b")], "good": [("a",)]})
        plan, database, counts = evaluate_with_counts(self.PROGRAM, edb)
        assert set(database.facts("broken")) == set()
        plan.maintain(database, None, {"good": [("a",)]}, counts)
        assert ("a", "b") in database.facts("broken")

    def test_mixed_delta_across_strata(self):
        edb = Database.from_facts(
            {"e": [("a", "b"), ("b", "c")], "good": [("b",)]}
        )
        plan, database, counts = evaluate_with_counts(self.PROGRAM, edb)
        plan.maintain(
            database,
            {"e": [("c", "d")], "good": [("a",)]},
            {"e": [("a", "b")], "good": [("b",)]},
            counts,
        )
        expected = self._full([("b", "c"), ("c", "d")], [("a",)])
        predicates = ("e", "good", "tc", "broken", "ok")
        assert snapshot(database, predicates) == snapshot(expected, predicates)


class TestProgramFactsAndIdbDeltas:
    def test_program_fact_survives_edb_deletion(self):
        # e(a, b) is asserted by the program itself; retracting the very
        # same row from the EDB must not delete the axiom or its closure.
        program = parse_program(
            """
            e(a, b).
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- e(X, Y), tc(Y, Z).
            """
        )
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        plan, database, counts = evaluate_with_counts(program, edb)
        plan.maintain(database, None, {"e": [("a", "b")]}, counts)
        assert ("a", "b") in database.facts("e")
        assert ("a", "c") in database.facts("tc")
        plan.maintain(database, None, {"e": [("b", "c")]}, counts)
        assert ("a", "c") not in database.facts("tc")
        assert ("a", "b") in database.facts("tc")

    def test_delta_under_idb_name_treated_as_base_fact(self):
        edb = Database.from_facts({"e": [("a", "b")], "tc": [("x", "y")]})
        plan, database, counts = evaluate_with_counts(TC, edb)
        assert ("x", "y") in database.facts("tc")
        plan.maintain(database, None, {"tc": [("x", "y")]}, counts)
        assert ("x", "y") not in database.facts("tc")
        assert ("a", "b") in database.facts("tc")


class TestRandomizedDifferential:
    """DRed vs from-scratch evaluation on random stratified programs."""

    def _run(self, seed, negation):
        program = random_sl_program(seed, negation=negation)
        arities = edb_arities(program)
        if not arities:
            return
        edb = random_database(seed + 1, arities, domain_size=5, facts_per_predicate=6)
        plan = MaintenancePlan(program)
        database, counts = plan.evaluate(edb)
        rng = random.Random(seed + 2)
        domain = [f"v{i}" for i in range(5)]
        for round_index in range(4):
            delta_plus = {}
            delta_minus = {}
            for predicate, arity in arities.items():
                existing = sorted(edb.facts(predicate))
                n_del = rng.randint(0, min(2, len(existing)))
                removed = set(rng.sample(existing, n_del)) if n_del else set()
                added = set()
                for _ in range(rng.randint(0, 2)):
                    row = tuple(rng.choice(domain) for _ in range(arity))
                    if row not in existing and row not in removed:
                        added.add(row)
                if removed:
                    delta_minus[predicate] = removed
                if added:
                    delta_plus[predicate] = added
                relation = edb.relation(predicate, arity)
                for row in removed:
                    relation.discard(row)
                for row in added:
                    relation.add(row)
            plan.maintain(database, delta_plus, delta_minus, counts)
            expected = Engine(check_safety=False).evaluate(program, edb)
            predicates = sorted(program.predicates)
            assert snapshot(database, predicates) == snapshot(
                expected, predicates
            ), f"seed={seed} round={round_index}"

    @pytest.mark.parametrize("seed", range(10))
    def test_with_negation(self, seed):
        self._run(seed, negation=True)

    @pytest.mark.parametrize("seed", [101, 103, 107, 109, 113])
    def test_positive_only(self, seed):
        self._run(seed, negation=False)


class TestStoreLevelDifferential:
    """ViewManager over random commits vs fresh evaluation of the query."""

    QUERY = parse_graphical_query(
        """
        define (X) -[risky]-> (Y) {
            (X) -[link+]-> (Y);
            (X) -[~fast]-> (Y);
        }
        """
    )
    MARKED = parse_graphical_query(
        "define (X) -[marked]-> (Y) { (X) -[link]-> (Y); stop(Y); }"
    )

    def test_random_commits_match_fresh_evaluation(self):
        rng = random.Random(17)
        nodes = [f"n{i}" for i in range(8)]
        store = HAMStore()
        store.load_database(Database.from_facts({"link": [("n0", "n1")]}))
        manager = ViewManager(store)
        risky = manager.register("risky", self.QUERY)
        marked = manager.register("marked", self.MARKED)
        edges = [("n0", "n1", "link")]
        present = ["n0", "n1"]  # nodes known to exist (edges never remove them)
        labeled = set()
        for step in range(40):
            op = rng.random()
            with store.session().transaction() as txn:
                if op < 0.45 or not edges:
                    edge = (
                        rng.choice(nodes),
                        rng.choice(nodes),
                        rng.choice(["link", "fast"]),
                    )
                    txn.add_edge(edge[0], edge[1], EdgeLabel(edge[2]))
                    edges.append(edge)
                    for node in edge[:2]:
                        if node not in present:
                            present.append(node)
                elif op < 0.75:
                    edge = edges.pop(rng.randrange(len(edges)))
                    txn.remove_edge(edge[0], edge[1], EdgeLabel(edge[2]))
                else:
                    node = rng.choice(present)
                    if node in labeled:
                        txn.set_node_label(node, None)
                        labeled.discard(node)
                    else:
                        txn.set_node_label(node, "stop")
                        labeled.add(node)
            engine = GraphLogEngine()
            assert manager.answers("risky") == engine.answers(
                self.QUERY, store.graph, "risky"
            ), step
            assert manager.answers("marked") == engine.answers(
                self.MARKED, store.graph, "marked"
            ), step
        # Everything above must have gone through maintenance, not refresh.
        # (Commits whose fact-level delta is empty — e.g. a duplicate
        # parallel edge — are skipped entirely, so <= 40.)
        assert risky.full_refreshes == 1
        assert marked.full_refreshes == 1
        assert 30 <= risky.incremental_updates <= 40
        assert marked.incremental_updates == risky.incremental_updates
