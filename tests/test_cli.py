"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text(
        """
        descendant(ann, bob).
        descendant(bob, cal).
        person(ann). person(bob). person(cal).
        """
    )
    return str(path)


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "query.gl"
    path.write_text(
        """
        define (P1) -[anc-of]-> (P3) {
            (P1) -[descendant+]-> (P3);
        }
        """
    )
    return str(path)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.dl"
    path.write_text(
        """
        sg(X, X) :- person(X).
        sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
        """
    )
    return str(path)


class TestCommands:
    def test_figure_by_number(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "descendant-tc" in out

    def test_figure_by_name(self, capsys):
        assert main(["figure", "fig08"]) == 0
        assert "same generation" in capsys.readouterr().out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_query(self, capsys, query_file, facts_file):
        assert main(["query", query_file, facts_file]) == 0
        out = capsys.readouterr().out
        assert "anc-of (3 tuples)" in out
        assert "ann  cal" in out

    def test_query_naive_method(self, capsys, query_file, facts_file):
        assert main(["query", query_file, facts_file, "--method", "naive"]) == 0
        assert "anc-of (3 tuples)" in capsys.readouterr().out

    def test_datalog(self, capsys, tmp_path, facts_file):
        program = tmp_path / "p.dl"
        program.write_text("anc(X, Y) :- descendant(X, Y).\nanc(X, Y) :- descendant(X, Z), anc(Z, Y).\n")
        assert main(["datalog", str(program), "--data", facts_file]) == 0
        assert "anc (3 tuples)" in capsys.readouterr().out

    def test_datalog_inline_facts(self, capsys, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text("e(a, b).\nr(X, Y) :- e(X, Y).\n")
        assert main(["datalog", str(program)]) == 0
        assert "r (1 tuples)" in capsys.readouterr().out

    def test_translate(self, capsys, program_file):
        assert main(["translate", program_file]) == 0
        out = capsys.readouterr().out
        assert "e(c, c, c, X, X, sg)" in out

    def test_rpq(self, capsys, facts_file):
        assert main(["rpq", "descendant+", facts_file]) == 0
        assert "pairs matching" in capsys.readouterr().out

    def test_rpq_with_source(self, capsys, facts_file):
        assert main(["rpq", "descendant+", facts_file, "--source", "ann"]) == 0
        out = capsys.readouterr().out
        assert "bob" in out and "cal" in out

    def test_dot(self, capsys, query_file):
        assert main(["dot", query_file]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_facts_file_with_rule_rejected(self, tmp_path, query_file):
        bad = tmp_path / "bad.dl"
        bad.write_text("p(X) :- q(X).")
        with pytest.raises(SystemExit):
            main(["query", query_file, str(bad)])


class TestNewCommands:
    def test_optimize(self, capsys, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text(
            "v(X, Y) :- a(X, Z), b(Z, Y).\nout(X, Y) :- v(X, Y), c(Y).\n"
        )
        assert main(["optimize", str(program), "--roots", "out"]) == 0
        out = capsys.readouterr().out
        assert "v(" not in out  # the view was inlined away
        assert "out(X, Y)" in out

    def test_magic(self, capsys, tmp_path, facts_file):
        program = tmp_path / "p.dl"
        program.write_text(
            "anc(X, Y) :- descendant(X, Y).\n"
            "anc(X, Y) :- descendant(X, Z), anc(Z, Y).\n"
        )
        assert main(["magic", str(program), "anc(ann, Y)", "--data", facts_file]) == 0
        out = capsys.readouterr().out
        assert "2 answers" in out
        assert "facts derived:" in out

    def test_export(self, capsys, tmp_path, facts_file):
        out_path = tmp_path / "g.json"
        assert main(["export", facts_file, str(out_path)]) == 0
        from repro.io import load_graph

        graph = load_graph(out_path)
        assert graph.edge_count() == 2  # two descendant edges
