"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text(
        """
        descendant(ann, bob).
        descendant(bob, cal).
        person(ann). person(bob). person(cal).
        """
    )
    return str(path)


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "query.gl"
    path.write_text(
        """
        define (P1) -[anc-of]-> (P3) {
            (P1) -[descendant+]-> (P3);
        }
        """
    )
    return str(path)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.dl"
    path.write_text(
        """
        sg(X, X) :- person(X).
        sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
        """
    )
    return str(path)


class TestCommands:
    def test_figure_by_number(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "descendant-tc" in out

    def test_figure_by_name(self, capsys):
        assert main(["figure", "fig08"]) == 0
        assert "same generation" in capsys.readouterr().out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_query(self, capsys, query_file, facts_file):
        assert main(["query", query_file, facts_file]) == 0
        out = capsys.readouterr().out
        assert "anc-of (3 tuples)" in out
        assert "ann  cal" in out

    def test_query_naive_method(self, capsys, query_file, facts_file):
        assert main(["query", query_file, facts_file, "--method", "naive"]) == 0
        assert "anc-of (3 tuples)" in capsys.readouterr().out

    def test_datalog(self, capsys, tmp_path, facts_file):
        program = tmp_path / "p.dl"
        program.write_text("anc(X, Y) :- descendant(X, Y).\nanc(X, Y) :- descendant(X, Z), anc(Z, Y).\n")
        assert main(["datalog", str(program), "--data", facts_file]) == 0
        assert "anc (3 tuples)" in capsys.readouterr().out

    def test_datalog_inline_facts(self, capsys, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text("e(a, b).\nr(X, Y) :- e(X, Y).\n")
        assert main(["datalog", str(program)]) == 0
        assert "r (1 tuples)" in capsys.readouterr().out

    def test_translate(self, capsys, program_file):
        assert main(["translate", program_file]) == 0
        out = capsys.readouterr().out
        assert "e(c, c, c, X, X, sg)" in out

    def test_rpq(self, capsys, facts_file):
        assert main(["rpq", "descendant+", facts_file]) == 0
        assert "pairs matching" in capsys.readouterr().out

    def test_rpq_with_source(self, capsys, facts_file):
        assert main(["rpq", "descendant+", facts_file, "--source", "ann"]) == 0
        out = capsys.readouterr().out
        assert "bob" in out and "cal" in out

    def test_dot(self, capsys, query_file):
        assert main(["dot", query_file]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_facts_file_with_rule_rejected(self, tmp_path, query_file):
        bad = tmp_path / "bad.dl"
        bad.write_text("p(X) :- q(X).")
        with pytest.raises(SystemExit):
            main(["query", query_file, str(bad)])


class TestNewCommands:
    def test_optimize(self, capsys, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text(
            "v(X, Y) :- a(X, Z), b(Z, Y).\nout(X, Y) :- v(X, Y), c(Y).\n"
        )
        assert main(["optimize", str(program), "--roots", "out"]) == 0
        out = capsys.readouterr().out
        assert "v(" not in out  # the view was inlined away
        assert "out(X, Y)" in out

    def test_magic(self, capsys, tmp_path, facts_file):
        program = tmp_path / "p.dl"
        program.write_text(
            "anc(X, Y) :- descendant(X, Y).\n"
            "anc(X, Y) :- descendant(X, Z), anc(Z, Y).\n"
        )
        assert main(["magic", str(program), "anc(ann, Y)", "--data", facts_file]) == 0
        out = capsys.readouterr().out
        assert "2 answers" in out
        assert "facts derived:" in out

    def test_export(self, capsys, tmp_path, facts_file):
        out_path = tmp_path / "g.json"
        assert main(["export", facts_file, str(out_path)]) == 0
        from repro.io import load_graph

        graph = load_graph(out_path)
        assert graph.edge_count() == 2  # two descendant edges


class TestTelemetryCommands:
    @pytest.fixture()
    def live_server(self):
        from repro.service.server import ServiceConfig, ServiceServer

        srv = ServiceServer(
            config=ServiceConfig(port=0, workers=2, timeout=10.0, slow_ms=0.0)
        ).start_background()
        yield srv
        srv.stop()

    def test_top_single_iteration(self, capsys, live_server):
        from repro.service.client import ServiceClient

        with ServiceClient(port=live_server.port) as c:
            c.update(edges=[["a", "link", "b"]])
            c.datalog("hop(X, Y) :- link(X, Y).", predicate="hop")
        assert main(
            ["top", "--port", str(live_server.port), "--iterations", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro top — version 1" in out
        assert "requests" in out and "caches" in out
        assert "link" in out  # churned predicate made the ranking
        assert "slowlog" in out
        assert "\x1b[" not in out  # no ANSI clears when stdout is captured

    def test_call_slowlog(self, capsys, live_server):
        import json

        from repro.service.client import ServiceClient

        with ServiceClient(port=live_server.port) as c:
            c.datalog("hop(X, Y) :- link(X, Y).", predicate="hop")
        assert main(
            [
                "call",
                "slowlog",
                "--port",
                str(live_server.port),
                "--limit",
                "5",
            ]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"]["stats"]["enabled"] is True
        assert doc["result"]["entries"]
        assert doc["result"]["entries"][0]["request_id"]

    def test_metrics_port_serves_exposition(self):
        import urllib.request

        from repro.service.server import ServiceConfig, ServiceServer

        srv = ServiceServer(
            config=ServiceConfig(port=0, workers=2, metrics_port=0)
        ).start_background()
        try:
            assert srv.metrics_port
            body = (
                urllib.request.urlopen(
                    f"http://127.0.0.1:{srv.metrics_port}/metrics", timeout=5
                )
                .read()
                .decode()
            )
            assert "repro_store_version 0" in body
        finally:
            srv.stop()

    def test_log_flags_configure_handler(self, tmp_path, facts_file):
        import logging

        package_logger = logging.getLogger("repro")
        before = list(package_logger.handlers)
        try:
            out_path = tmp_path / "g.json"
            args = ["--log-json", "--log-level", "debug", "export", facts_file, str(out_path)]
            assert main(args) == 0
            added = [
                h for h in package_logger.handlers
                if getattr(h, "_repro_cli_handler", False)
            ]
            assert len(added) == 1
            assert package_logger.level == logging.DEBUG
        finally:
            package_logger.handlers = before
            package_logger.setLevel(logging.NOTSET)
