"""Tests for Algorithm 3.1 (SL-DATALOG -> STC-DATALOG)."""

import pytest

from repro.datalog.classify import is_stratified_tc_program
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Sentinel
from repro.errors import NotLinearError, StratificationError
from repro.translation.differential import check_equivalence
from repro.translation.sl_to_stc import prepare_adom, sl_to_stc, translate_and_check

SG = """
sg(X, X) :- person(X).
sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
"""


def sg_db():
    db = Database()
    db.add_facts("person", [(p,) for p in "abcdefg"])
    db.add_facts(
        "parent", [("c", "a"), ("d", "a"), ("e", "b"), ("f", "b"), ("g", "c")]
    )
    return db


class TestFigure9:
    def test_exact_program_text(self):
        result = sl_to_stc(parse_program(SG))
        text = result.program.pretty()
        assert "e(c, c, c, X, X, sg) :- person(X)." in text
        assert "e(Z, W, sg, X, Y, sg) :- parent(X, Z), parent(Y, W)." in text
        assert "t(X1, X2, X3, Y1, Y2, Y3) :- e(X1, X2, X3, Y1, Y2, Y3)." in text
        assert "sg(X1, X2) :- t(c, c, c, X1, X2, sg)." in text

    def test_output_is_stc(self):
        result = sl_to_stc(parse_program(SG))
        assert is_stratified_tc_program(result.program)

    def test_equivalent_on_sample(self):
        equal, diffs = check_equivalence(parse_program(SG), sg_db())
        assert equal, diffs

    def test_translate_and_check(self):
        translate_and_check(parse_program(SG))


class TestInputValidation:
    def test_nonlinear_rejected(self):
        with pytest.raises(NotLinearError):
            sl_to_stc(
                parse_program(
                    """
                    p(X, Y) :- e(X, Y).
                    p(X, Y) :- p(X, Z), p(Z, Y).
                    """
                )
            )

    def test_unstratified_rejected(self):
        with pytest.raises(StratificationError):
            sl_to_stc(parse_program("p(X) :- e(X, X), not p(X)."))

    def test_non_recursive_program_passes_through(self):
        program = parse_program("a(X) :- e(X, Y). b(X) :- a(X).")
        result = sl_to_stc(program)
        assert result.components == []
        assert len(result.program) == 2


class TestSignatures:
    def test_predicate_name_signatures_by_default(self):
        result = sl_to_stc(parse_program(SG))
        assert result.constants["sg"] == Constant("sg")
        assert result.constants["start"] == Constant("c")

    def test_sentinels_when_names_collide(self):
        # The constant 'sg' occurs in the program: signature must dodge it.
        program = parse_program(
            SG + "special(X) :- tag(X, sg).\n"
        )
        result = sl_to_stc(program)
        signature = result.constants["sg"]
        assert isinstance(signature.value, Sentinel)

    def test_sentinels_on_request(self):
        result = sl_to_stc(parse_program(SG), use_predicate_name_signatures=False)
        assert isinstance(result.constants["sg"].value, Sentinel)

    def test_signature_collision_with_database_values(self):
        # A database that actually *contains* the value "sg" would collide
        # with name signatures; sentinel signatures stay correct.
        db = sg_db()
        db.add_fact("person", "sg")
        program = parse_program(SG)
        result = sl_to_stc(program, use_predicate_name_signatures=False)
        equal, diffs = check_equivalence(program, db, translation=result)
        assert equal, diffs


class TestCarriedVariables:
    CARRIED = """
    anc(X, Y) :- e(X, Y).
    anc(X, Y) :- anc(X, Z), e(Z, Y).
    """

    def test_left_linear_recursion(self):
        # X occurs only in the head and recursive subgoal: needs adom guard.
        program = parse_program(self.CARRIED)
        result = sl_to_stc(program)
        db = Database()
        db.add_facts("e", [("a", "b"), ("b", "c"), ("c", "d")])
        equal, diffs = check_equivalence(program, db, translation=result)
        assert equal, diffs

    def test_guard_rules_reference_adom(self):
        result = sl_to_stc(parse_program(self.CARRIED))
        text = str(result.program)
        assert "adom(" in text

    def test_no_guard_when_not_needed(self):
        result = sl_to_stc(parse_program(SG))
        assert "adom(" not in str(result.program)


class TestMutualRecursion:
    PROGRAM = """
    reach-even(X) :- start(X).
    reach-odd(Y) :- edge(X, Y), reach-even(X).
    reach-even(Y) :- edge(X, Y), reach-odd(X).
    """

    def test_translates_and_matches(self):
        program = parse_program(self.PROGRAM)
        db = Database()
        db.add_fact("start", "n0")
        db.add_facts("edge", [(f"n{i}", f"n{i+1}") for i in range(6)])
        equal, diffs = check_equivalence(program, db)
        assert equal, diffs

    def test_one_component_two_readbacks(self):
        result = sl_to_stc(parse_program(self.PROGRAM))
        assert len(result.components) == 1
        component = result.components[0]
        assert component == frozenset({"reach-even", "reach-odd"})
        # Read-back rules: one per member predicate.
        t_name = result.closure_predicates[0]
        readbacks = [
            r
            for r in result.program
            if r.head.predicate in component
            and any(
                lit.predicate == t_name for lit in r.positive_literals()
            )
        ]
        assert len(readbacks) == 2


class TestNegationAndStrata:
    PROGRAM = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    node(X) :- e(X, _).
    node(X) :- e(_, X).
    sep(X, Y) :- node(X), node(Y), not tc(X, Y).
    above(X, Y) :- sep(X, Y).
    above(X, Y) :- sep(X, Z), above(Z, Y).
    """

    def test_stratified_negation_preserved(self):
        program = parse_program(self.PROGRAM)
        db = Database()
        db.add_facts("e", [("a", "b"), ("b", "c")])
        equal, diffs = check_equivalence(program, db)
        assert equal, diffs

    def test_two_recursive_components(self):
        result = sl_to_stc(parse_program(self.PROGRAM))
        assert len(result.components) == 2
        assert len(set(result.edge_predicates.values())) == 2


class TestAdomHelper:
    def test_prepare_adom(self):
        db = Database.from_facts({"e": [("a", 1)]})
        prepared = prepare_adom(db)
        assert prepared.facts("adom") == {("a",), (1,)}
        assert "adom" not in db

    def test_polynomial_output_size(self):
        # Output rule count is linear in input rules + predicates.
        program = parse_program(
            "".join(
                f"q{i}(X, Y) :- e(X, Y).\nq{i}(X, Y) :- e(X, Z), q{i}(Z, Y).\n"
                for i in range(12)
            )
        )
        result = sl_to_stc(program)
        assert len(result.program) <= 6 * 12
