"""Tests for safety checking and body scheduling."""

import pytest

from repro.datalog.ast import ArithmeticAssign, Comparison, atom, lit, rule
from repro.datalog.parser import parse_rule
from repro.datalog.safety import (
    check_rule_safety,
    is_safe,
    limited_variables,
    schedule_body,
)
from repro.datalog.terms import Variable
from repro.errors import SafetyError


class TestLimitedVariables:
    def test_positive_literal_limits(self):
        r = parse_rule("h(X) :- p(X, Y).")
        assert limited_variables(r) == {Variable("X"), Variable("Y")}

    def test_equality_with_constant_limits(self):
        r = parse_rule("h(X) :- p(Y), X = 3.")
        assert Variable("X") in limited_variables(r)

    def test_equality_propagates(self):
        r = parse_rule("h(X) :- p(Y), X = Y.")
        assert Variable("X") in limited_variables(r)

    def test_arithmetic_propagates(self):
        r = parse_rule("h(Z) :- p(X), Z = X + 1.")
        assert Variable("Z") in limited_variables(r)

    def test_arithmetic_chain(self):
        r = parse_rule("h(W) :- p(X), Z = X + 1, W = Z * 2.")
        assert Variable("W") in limited_variables(r)


class TestSafety:
    def test_safe_rule(self):
        check_rule_safety(parse_rule("h(X) :- p(X)."))

    def test_unsafe_head(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("h(X, Y) :- p(X)."))

    def test_unsafe_negation(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("h(X) :- p(X), not q(Y)."))

    def test_negation_with_anonymous_ok(self):
        check_rule_safety(parse_rule("h(X) :- p(X), not q(X, _)."))

    def test_unsafe_comparison(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("h(X) :- p(X), X < Y."))

    def test_anonymous_in_head_rejected(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("h(_) :- p(_)."))

    def test_is_safe_boolean(self):
        assert is_safe(parse_rule("h(X) :- p(X)."))
        assert not is_safe(parse_rule("h(Y) :- p(X)."))

    def test_unsafe_arithmetic_input(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("h(X) :- p(X), Z = Y + 1."))


class TestScheduling:
    def test_builtins_deferred_until_bound(self):
        r = parse_rule("h(X) :- X < Y, p(X), q(Y).")
        schedule = schedule_body(r)
        comparison_index = next(
            i for i, e in enumerate(schedule) if isinstance(e, Comparison)
        )
        assert comparison_index == 2  # after both literals

    def test_negation_scheduled_after_binding(self):
        r = parse_rule("h(X) :- not q(X, Y), p(X), r(Y).")
        schedule = schedule_body(r)
        negated_index = next(
            i
            for i, e in enumerate(schedule)
            if hasattr(e, "negative") and e.negative
        )
        assert negated_index == 2

    def test_greedy_prefers_bound_join(self):
        r = parse_rule("h(X, Z) :- a(X, Y), b(Y, Z), c(W, V), d(V, X).")
        schedule = schedule_body(r)
        # After a(X,Y), b shares Y; the join order should chain rather than
        # jump to the disconnected c.
        assert schedule[1].predicate == "b"

    def test_equality_binding_allows_schedule(self):
        r = parse_rule("h(X) :- p(Y), X = Y, X < 10.")
        schedule = schedule_body(r)
        assert len(schedule) == 3

    def test_unschedulable_raises(self):
        r = rule(atom("h", "X"), Comparison("<", "X", "Y"))
        with pytest.raises(SafetyError):
            schedule_body(r)

    def test_arithmetic_after_inputs(self):
        r = parse_rule("h(Z) :- Z = X + Y, p(X), q(Y).")
        schedule = schedule_body(r)
        assert isinstance(schedule[-1], ArithmeticAssign)
