"""Tests for the Datalog rule optimizer."""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import prepare_database
from repro.core.translate import translate
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.optimize import (
    canonical_rule_key,
    eliminate_duplicate_rules,
    inline_views,
    optimize,
    remove_unused,
)
from repro.datalog.parser import parse_program, parse_rule


class TestDuplicateElimination:
    def test_alpha_equivalent_rules_merge(self):
        program = parse_program(
            """
            p(X, Y) :- e(X, Y).
            p(A, B) :- e(A, B).
            """
        )
        assert len(eliminate_duplicate_rules(program)) == 1

    def test_different_rules_kept(self):
        program = parse_program(
            """
            p(X, Y) :- e(X, Y).
            p(X, Y) :- e(Y, X).
            """
        )
        assert len(eliminate_duplicate_rules(program)) == 2

    def test_constants_distinguish(self):
        program = parse_program(
            """
            p(X) :- e(X, a).
            p(X) :- e(X, b).
            """
        )
        assert len(eliminate_duplicate_rules(program)) == 2

    def test_builtins_in_key(self):
        program = parse_program(
            """
            p(X) :- e(X, Y), X < Y.
            p(A) :- e(A, B), A < B.
            p(X) :- e(X, Y), X > Y.
            """
        )
        assert len(eliminate_duplicate_rules(program)) == 2

    def test_key_ignores_variable_names(self):
        r1 = parse_rule("p(X, Y) :- e(X, Z), f(Z, Y).")
        r2 = parse_rule("p(U, V) :- e(U, W), f(W, V).")
        assert canonical_rule_key(r1) == canonical_rule_key(r2)


class TestInlining:
    def test_single_view_chain_flattens(self):
        program = parse_program(
            """
            v(X, Y) :- a(X, Z), b(Z, Y).
            out(X, Y) :- v(X, Y), c(Y).
            """
        )
        optimized = inline_views(program, keep=["out"])
        assert optimized.idb_predicates == {"out"}
        (rule,) = optimized.rules
        assert rule.body_predicates() == {"a", "b", "c"}

    def test_nested_views(self):
        program = parse_program(
            """
            v1(X, Y) :- a(X, Y).
            v2(X, Y) :- v1(X, Z), b(Z, Y).
            out(X, Y) :- v2(X, Y).
            """
        )
        optimized = inline_views(program, keep=["out"])
        (rule,) = optimized.rules
        assert rule.body_predicates() == {"a", "b"}

    def test_multi_rule_predicate_not_inlined(self):
        program = parse_program(
            """
            v(X) :- a(X).
            v(X) :- b(X).
            out(X) :- v(X).
            """
        )
        optimized = inline_views(program, keep=["out"])
        assert "v" in optimized.idb_predicates

    def test_recursive_predicate_not_inlined(self):
        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            out(X, Y) :- tc(X, Y).
            """
        )
        optimized = inline_views(program, keep=["out"])
        assert "tc" in optimized.idb_predicates

    def test_negated_view_not_inlined(self):
        program = parse_program(
            """
            v(X) :- a(X).
            out(X) :- b(X), not v(X).
            """
        )
        optimized = inline_views(program, keep=["out"])
        assert "v" in optimized.idb_predicates

    def test_repeated_head_vars_not_inlined(self):
        program = parse_program(
            """
            diag(X, X) :- a(X).
            out(X, Y) :- diag(X, Y).
            """
        )
        optimized = inline_views(program, keep=["out"])
        assert "diag" in optimized.idb_predicates

    def test_view_used_twice_gets_fresh_variables(self):
        program = parse_program(
            """
            v(X, Y) :- e(X, Z), f(Z, Y).
            out(X, Y) :- v(X, M), v(M, Y).
            """
        )
        optimized = inline_views(program, keep=["out"])
        (rule,) = optimized.rules
        assert len(rule.body) == 4
        # The two unfolded Z's must be distinct variables.
        z_vars = {
            t
            for lit in rule.positive_literals()
            for t in lit.atom.args
            if t.name.startswith("Z")
        }
        assert len(z_vars) == 2

    def test_semantics_preserved(self):
        program = parse_program(
            """
            v(X, Y) :- e(X, Z), f(Z, Y).
            out(X, Y) :- v(X, M), v(M, Y).
            """
        )
        optimized = inline_views(program, keep=["out"])
        db = Database.from_facts(
            {"e": [("a", "m1"), ("b", "m2")], "f": [("m1", "b"), ("m2", "c")]}
        )
        assert evaluate(program, db).facts("out") == evaluate(optimized, db).facts("out")


class TestRemoveUnused:
    def test_prunes_unreachable(self):
        program = parse_program(
            """
            keepme(X) :- e(X).
            dead(X) :- f(X).
            """
        )
        pruned = remove_unused(program, ["keepme"])
        assert pruned.idb_predicates == {"keepme"}

    def test_keeps_transitive_dependencies(self):
        program = parse_program(
            """
            a(X) :- b(X).
            b(X) :- c(X), e(X).
            c(X) :- e(X).
            dead(X) :- e(X).
            """
        )
        pruned = remove_unused(program, ["a"])
        assert pruned.idb_predicates == {"a", "b", "c"}


class TestOptimizePipeline:
    @pytest.mark.parametrize(
        "source,facts",
        [
            (
                "define (X) -[out]-> (Y) { (X) -[a b c]-> (Y); }",
                {"a": [("1", "2")], "b": [("2", "3")], "c": [("3", "4")]},
            ),
            (
                "define (X) -[out]-> (Y) { (X) -[(a | b) c+]-> (Y); }",
                {"a": [("1", "2")], "b": [("0", "2")], "c": [("2", "3"), ("3", "4")]},
            ),
            (
                """
                define (X) -[out]-> (Y) {
                    (X) -[a* -b]-> (Y);
                    (X) -[~c]-> (Y);
                }
                """,
                {"a": [("1", "2")], "b": [("9", "2")], "c": [("1", "7")]},
            ),
        ],
    )
    def test_translated_queries_equivalent(self, source, facts):
        query = parse_graphical_query(source)
        program = translate(query)
        optimized = optimize(program, roots=["out"])
        prepared = prepare_database(Database.from_facts(facts))
        assert evaluate(program, prepared).facts("out") == evaluate(
            optimized, prepared
        ).facts("out")

    def test_composition_becomes_single_rule(self):
        query = parse_graphical_query(
            "define (X) -[out]-> (Y) { (X) -[a b c d]-> (Y); }"
        )
        optimized = optimize(translate(query), roots=["out"])
        assert len(optimized) == 1
        (rule,) = optimized.rules
        assert rule.body_predicates() == {"a", "b", "c", "d"}

    def test_random_sl_programs_preserved(self):
        from repro.translation.differential import random_database, random_sl_program

        for seed in range(8):
            program = random_sl_program(seed)
            roots = sorted(program.idb_predicates)
            optimized = optimize(program, roots=roots)
            arities = {p: program.arity_of(p) for p in program.edb_predicates}
            db = random_database(seed, arities, domain_size=5, facts_per_predicate=6)
            full = evaluate(program, db)
            opt = evaluate(optimized, db)
            for predicate in roots:
                assert full.facts(predicate) == opt.facts(predicate), (seed, predicate)
