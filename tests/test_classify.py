"""Tests for program classification (Definition 3.2)."""

from repro.datalog.classify import (
    classification,
    is_linear,
    is_stratified_linear,
    is_stratified_tc_program,
    is_tc_program,
    recursive_predicates,
    tc_base_predicates,
)
from repro.datalog.parser import parse_program


TC_TEXT = """
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

SG_TEXT = """
sg(X, X) :- person(X).
sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).
"""

NONLINEAR_TEXT = """
path(X, Y) :- e(X, Y).
path(X, Y) :- path(X, Z), path(Z, Y).
"""


class TestLinear:
    def test_tc_is_linear(self):
        assert is_linear(parse_program(TC_TEXT))

    def test_sg_is_linear(self):
        assert is_linear(parse_program(SG_TEXT))

    def test_doubling_not_linear(self):
        assert not is_linear(parse_program(NONLINEAR_TEXT))

    def test_mutual_recursion_linear(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """
        )
        assert is_linear(program)

    def test_two_occurrences_of_lower_idb_still_linear(self):
        # Multiple subgoals on a *lower* (non-recursive-with-head) IDB are
        # fine: only same-SCC subgoals count.
        program = parse_program(
            """
            base(X, Y) :- e(X, Y).
            q(X, Y) :- base(X, Z), base(Z, Y).
            """
        )
        assert is_linear(program)

    def test_non_recursive_program_is_linear(self):
        assert is_linear(parse_program("a(X) :- e(X)."))

    def test_stratified_linear(self):
        program = parse_program(
            TC_TEXT + "out(X, Y) :- n(X), n(Y), not tc(X, Y)."
        )
        assert is_stratified_linear(program)


class TestRecursivePredicates:
    def test_simple(self):
        assert recursive_predicates(parse_program(TC_TEXT)) == {"tc"}

    def test_non_recursive(self):
        assert recursive_predicates(parse_program("a(X) :- e(X).")) == set()

    def test_mutual(self):
        program = parse_program(
            """
            a(X) :- e(X).
            a(X) :- s(X, Y), b(Y).
            b(X) :- s(X, Y), a(Y).
            """
        )
        assert recursive_predicates(program) == {"a", "b"}


class TestTCShape:
    def test_tc_program_detected(self):
        assert is_tc_program(parse_program(TC_TEXT))
        assert is_stratified_tc_program(parse_program(TC_TEXT))

    def test_sg_not_tc(self):
        assert not is_tc_program(parse_program(SG_TEXT))

    def test_wide_tc(self):
        program = parse_program(
            """
            t(X1, X2, Y1, Y2) :- e(X1, X2, Y1, Y2).
            t(X1, X2, Y1, Y2) :- e(X1, X2, Z1, Z2), t(Z1, Z2, Y1, Y2).
            """
        )
        assert is_tc_program(program)

    def test_extra_rule_breaks_shape(self):
        program = parse_program(
            TC_TEXT + "tc(X, Y) :- special(X, Y)."
        )
        assert not is_tc_program(program)

    def test_base_on_recursive_pred_rejected(self):
        program = parse_program(
            """
            t(X, Y) :- t2(X, Y).
            t(X, Y) :- t2(X, Z), t(Z, Y).
            t2(X, Y) :- e(X, Y).
            t2(X, Y) :- e(X, Z), t2(Z, Y).
            """
        )
        assert is_tc_program(program)  # two independent TC pairs

    def test_odd_arity_rejected(self):
        program = parse_program(
            """
            t(X, Y, W) :- e(X, Y, W).
            t(X, Y, W) :- e(X, Z, W), t(Z, Y, W).
            """
        )
        assert not is_tc_program(program)

    def test_tc_base_predicates(self):
        assert tc_base_predicates(parse_program(TC_TEXT)) == {"tc": "e"}

    def test_step_with_shared_variable_rejected(self):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- e(X, X), t(X, Y).
            """
        )
        assert not is_tc_program(program)


class TestClassification:
    def test_summary_keys(self):
        summary = classification(parse_program(TC_TEXT))
        assert summary["linear"] and summary["stratified"] and summary["tc"]
        assert summary["recursive_predicates"] == ["tc"]
        assert summary["edb"] == ["e"]
