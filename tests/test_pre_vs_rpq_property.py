"""Property test: the λ-translated Datalog evaluation of a variable-free
path regular expression agrees with the RPQ product-automaton evaluation.

This is the strongest oracle we have for the p.r.e. compiler: two completely
independent evaluation pipelines (stratified Datalog fixpoint vs automaton
reachability) must produce identical pair sets for every expression and
graph.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import GraphLogEngine
from repro.core.pre import (
    Alternation,
    Closure,
    Composition,
    Inversion,
    Optional,
    Pred,
    Star,
)
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.datasets.random_graphs import random_labeled_graph
from repro.graphs.bridge import database_from_graph
from repro.rpq.evaluate import RPQEvaluator
from repro.rpq import regex as rq

LABELS = ("a", "b", "c")

pre_exprs = st.recursive(
    st.sampled_from(LABELS).map(Pred),
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda t: Composition(*t)),
        st.tuples(inner, inner).map(lambda t: Alternation(*t)),
        inner.map(Closure),
        inner.map(Star),
        inner.map(Optional),
        inner.map(Inversion),
    ),
    max_leaves=6,
)


def pre_to_regex(expr):
    """Convert a variable-free p.r.e. into an equivalent label regex."""
    if isinstance(expr, Pred):
        return rq.Sym(expr.name)
    if isinstance(expr, Composition):
        return rq.Concat(pre_to_regex(expr.left), pre_to_regex(expr.right))
    if isinstance(expr, Alternation):
        return rq.Union(pre_to_regex(expr.left), pre_to_regex(expr.right))
    if isinstance(expr, Closure):
        return rq.Plus(pre_to_regex(expr.inner))
    if isinstance(expr, Star):
        return rq.Star(pre_to_regex(expr.inner))
    if isinstance(expr, Optional):
        return rq.Opt(pre_to_regex(expr.inner))
    if isinstance(expr, Inversion):
        return _invert_regex(pre_to_regex(expr.inner))
    raise AssertionError(expr)


def _invert_regex(regex):
    """Reverse a regex and flip every symbol's direction (path reversal)."""
    if isinstance(regex, rq.Sym):
        return rq.Sym(regex.label, inverted=not regex.inverted)
    if isinstance(regex, rq.Concat):
        return rq.Concat(_invert_regex(regex.right), _invert_regex(regex.left))
    if isinstance(regex, rq.Union):
        return rq.Union(_invert_regex(regex.left), _invert_regex(regex.right))
    if isinstance(regex, rq.Star):
        return rq.Star(_invert_regex(regex.inner))
    if isinstance(regex, rq.Plus):
        return rq.Plus(_invert_regex(regex.inner))
    if isinstance(regex, rq.Opt):
        return rq.Opt(_invert_regex(regex.inner))
    raise AssertionError(regex)


GRAPHS = [
    random_labeled_graph(seed, 8, 18, labels=LABELS) for seed in (3, 17)
]
DATABASES = [database_from_graph(graph) for graph in GRAPHS]


@given(pre_exprs, st.integers(min_value=0, max_value=len(GRAPHS) - 1))
@settings(max_examples=60, deadline=None)
def test_datalog_pipeline_matches_automaton(expr, graph_index):
    graph = GRAPHS[graph_index]
    database = DATABASES[graph_index]

    query_graph = QueryGraph()
    query_graph.edge("X", "Y", expr)
    query_graph.distinguished("X", "Y", "out")
    query = GraphicalQuery([query_graph])

    datalog_pairs = GraphLogEngine().answers(query, database, "out")
    rpq_pairs = RPQEvaluator(graph).pairs(pre_to_regex(expr))
    assert datalog_pairs == rpq_pairs, f"divergence on {expr}"
