#!/usr/bin/env python
"""CI smoke test for the columnar evaluation backend.

Runs the abl6 and abl7 benchmark workloads through both engine backends
with the differential check enabled:

- abl6: semi-naive transitive closure over a chain (the DRed ablation's
  evaluation hot path), ``Engine(method=...)`` directly;
- abl7: the flights ``reach``/``connected`` GraphLog query through a real
  :class:`QueryService` configured with ``engine="native"`` and
  ``engine="columnar"``, including an ``explain`` pass asserting the
  reported backend, and the RPQ op on both the CSR and dict-walk paths.

Any divergence between backends fails the job.  Timings are printed for
trend-watching but are *not* gated here — the calibrated >= 10x assertions
live in ``benchmarks/test_ablation_columnar.py`` where pytest-benchmark
controls the noise.

Run from the repository root::

    PYTHONPATH=src python scripts/benchmark_smoke.py

Exits non-zero (with a diagnostic on stderr) on any failure.
"""

from __future__ import annotations

import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.datalog.database import Database  # noqa: E402
from repro.datalog.engine import Engine  # noqa: E402
from repro.datalog.parser import parse_program  # noqa: E402
from repro.datasets.flights import random_flights  # noqa: E402
from repro.graphs.bridge import graph_from_database  # noqa: E402
from repro.ham.store import HAMStore  # noqa: E402
from repro.service.server import QueryService, ServiceConfig  # noqa: E402

CHAIN_PROGRAM = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)

FLIGHTS_QUERY = """
define (C1) -[reach]-> (C2) {
    (C1) <-[from]- (F); (F) -[to]-> (C2);
}
define (C1) -[connected]-> (C2) {
    (C1) -[reach+]-> (C2);
}
"""

# City-to-city hops: follow a `from` edge backwards onto the flight node,
# then its `to` edge forwards.
RPQ_EXPRESSION = "-from . to"


def fail(message):
    sys.stderr.write(f"benchmark_smoke: FAIL: {message}\n")
    sys.exit(1)


def timed(fn):
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


def check_abl6_chain():
    size = 400
    edb = Database()
    edb.add_facts("e", [(f"n{i}", f"n{i+1}") for i in range(size)])

    native_s, native = timed(
        lambda: Engine(method="seminaive").evaluate(CHAIN_PROGRAM, edb)
    )
    columnar_s, columnar = timed(
        lambda: Engine(method="columnar").evaluate(CHAIN_PROGRAM, edb)
    )
    if native != columnar:
        fail("abl6 chain closure: columnar result diverges from native")
    if ("n0", f"n{size}") not in native.facts("tc"):
        fail("abl6 chain closure: expected far pair missing")
    print(
        f"abl6 chain n={size}: native={native_s:.3f}s "
        f"columnar={columnar_s:.3f}s speedup={native_s / columnar_s:.1f}x"
    )


def flights_service(engine):
    store = HAMStore()
    store.load_graph(
        graph_from_database(random_flights(7, n_cities=40, n_flights=500))
    )
    return QueryService(store=store, config=ServiceConfig(engine=engine))


def execute(service, request):
    response = service.execute(request)
    if "result" not in response:
        fail(f"service error for {request.get('op')}: {response!r}")
    return response


def check_abl7_service():
    graphlog = {"op": "graphlog", "query": FLIGHTS_QUERY}
    rpq = {"op": "rpq", "query": RPQ_EXPRESSION}
    timings = {}
    results = {}
    for engine in ("native", "columnar"):
        service = flights_service(engine)
        if service.stats()["engine"] != engine:
            fail(f"service stats do not report engine={engine}")
        execute(service, graphlog)  # warm the plan cache
        service.results.clear()
        elapsed, response = timed(lambda: execute(service, graphlog))
        timings[engine] = elapsed
        relations = response["result"]["relations"]
        answers = execute(service, rpq)["result"]["relations"]["answers"]
        results[engine] = (
            sorted(map(tuple, relations["connected"])),
            sorted(map(tuple, answers)),
        )
        if not results[engine][0] or not results[engine][1]:
            fail(f"abl7 workload returned empty answers for engine={engine}")
        explain = execute(
            service,
            {"op": "explain", "query": FLIGHTS_QUERY, "target": "graphlog"},
        )
        expected_backend = "columnar" if engine == "columnar" else "native"
        spans = str(explain["result"])
        if f"'backend': '{expected_backend}'" not in spans:
            fail(f"explain trace for engine={engine} lacks backend marker")
    if results["native"] != results["columnar"]:
        fail("abl7 flights service: columnar results diverge from native")
    print(
        f"abl7 flights graphlog: native={timings['native']:.3f}s "
        f"columnar={timings['columnar']:.3f}s "
        f"speedup={timings['native'] / timings['columnar']:.1f}x"
    )


def main():
    check_abl6_chain()
    check_abl7_service()
    print("benchmark_smoke: OK")


if __name__ == "__main__":
    main()
