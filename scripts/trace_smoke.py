#!/usr/bin/env python
"""CI smoke test for distributed tracing and the cluster observability plane.

Boots one primary, one replica, and one router — all as real subprocesses,
exactly as an operator would — then asserts the properties the subsystem
promises:

- **cross-node propagation**: a routed, sampled request produces one trace
  whose assembled spans come from at least two distinct node ids (router +
  backend) under a single trace id, with the backend's ``request`` root
  parented at the router's ``route.forward`` span.
- **trace assembly via the CLI**: ``repro trace <id>`` against the router
  fans out, merges, and renders the cross-node tree.
- **subscription tagging**: a commit made under a client trace context
  pushes a delta frame carrying that commit's trace id.
- **cluster plane**: ``repro top --cluster --json`` (one machine-readable
  snapshot) sees all three processes — router plus two distinct backend
  node ids — with the replica reporting zero lag after convergence.

Run from the repository root::

    PYTHONPATH=src python scripts/trace_smoke.py

Exits non-zero (with a diagnostic on stderr) on any failure.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

LISTEN = re.compile(r"listening on [\d.]+:(\d+)")

CONVERGE_SECONDS = 30

PROCS = []


def fail(message):
    sys.stderr.write(f"trace_smoke: FAIL: {message}\n")
    for proc in PROCS:
        if proc.poll() is None:
            proc.kill()
    sys.exit(1)


def spawn(*args):
    """Start a ``repro`` subcommand; returns (process, announced port)."""
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    PROCS.append(proc)
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"{args[0]} exited before listening (rc={proc.poll()})")
        sys.stdout.write(line)
        match = LISTEN.search(line)
        if match:
            return proc, int(match.group(1))
    fail(f"{args[0]} never announced its port")


def run_cli(*args):
    """Run one ``repro`` subcommand to completion; returns its stdout."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=ROOT,
        env=dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src")),
        capture_output=True,
        text=True,
        timeout=60,
    )
    if result.returncode != 0:
        fail(f"repro {' '.join(args)} failed: rc={result.returncode} "
             f"{result.stdout}{result.stderr}")
    return result.stdout

def main():
    from repro.obs import context as trace_context
    from repro.service.client import ServiceClient

    _primary, primary_port = spawn(
        "serve", "--port", "0", "--trace-sample", "1.0", "--slow-ms", "10000",
    )
    address = f"127.0.0.1:{primary_port}"
    _replica, replica_port = spawn(
        "serve", "--port", "0", "--replica-of", address,
        "--repl-wait-ms", "500", "--version-wait-ms", "5000",
        "--trace-sample", "1.0",
    )
    _router, router_port = spawn(
        "route", "--port", "0", "--primary", address,
        "--replica", f"127.0.0.1:{replica_port}",
        "--trace-sample", "1.0",
    )

    program = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y)."

    # ---- traced routed write + read: one trace id across >= 2 nodes ----
    with ServiceClient(port=router_port, timeout=30) as client:
        write_trace = client.call("update", edges=[["a", "e", "b"], ["b", "e", "c"]])
        if not write_trace.get("trace_id"):
            fail("routed write response carries no trace_id")
        read = client.call("datalog", query=program)
        trace_id = read.get("trace_id")
        if not trace_id:
            fail("routed read response carries no trace_id")
        result = client.trace_get(trace_id)
        if not result.get("found"):
            fail(f"trace {trace_id} not found via the router")
        node_ids = {span.get("node_id") for span in result["spans"]}
        if len(node_ids) < 2:
            fail(f"trace {trace_id} spans only nodes {node_ids}; "
                 f"expected router + backend")
        names = {span["name"] for span in result["spans"]}
        for expected in ("route", "route.forward", "request"):
            if expected not in names:
                fail(f"trace {trace_id} is missing a {expected!r} span: {names}")
        by_id = {span["span_id"]: span for span in result["spans"]}
        for span in result["spans"]:
            if span["name"] != "request":
                continue
            parent = by_id.get(span.get("parent_span_id"))
            if parent is None or parent["name"] != "route.forward":
                fail(f"backend request span {span['span_id']} is not parented "
                     f"at a route.forward span")

        # ---- subscription: a traced commit tags its delta frame ----
        with ServiceClient(port=primary_port, timeout=30) as subscriber:
            handle = subscriber.subscribe("tc(X,Y) :- e(X,Y).", target="datalog")
            with trace_context.start(trace_id="smoke-commit-1", sampled=True):
                client.update(edges=[["c", "e", "d"]])
            deadline = time.time() + 10
            tagged = None
            while time.time() < deadline:
                event = handle.next_event(timeout=deadline - time.time())
                if event is None:
                    break
                if event["type"] == "delta":
                    tagged = event.get("trace_id")
                    break
            if tagged != "smoke-commit-1":
                fail(f"delta frame trace_id is {tagged!r}, "
                     f"expected 'smoke-commit-1'")

    # ---- repro trace renders the cross-node tree ----
    rendered = run_cli("trace", trace_id, "--port", str(router_port))
    if trace_id not in rendered or "route.forward" not in rendered:
        fail(f"repro trace output missing expected spans:\n{rendered}")
    if "2 node(s)" not in rendered and "3 node(s)" not in rendered:
        fail(f"repro trace did not assemble a multi-node tree:\n{rendered}")

    # ---- repro top --cluster sees every process ----
    deadline = time.time() + CONVERGE_SECONDS
    while True:
        snapshot = json.loads(run_cli(
            "top", "--cluster", "--json", "--port", str(router_port),
        ))
        cluster = snapshot["cluster"]
        nodes = cluster["nodes"]
        ok_nodes = [node for node in nodes if node.get("ok")]
        backend_ids = {node.get("node_id") for node in ok_nodes}
        replica_rows = [n for n in ok_nodes if n["role"] == "replica"]
        converged = (
            len(ok_nodes) == 2
            and len(backend_ids) == 2
            and cluster["router"].get("node_id")
            and replica_rows
            and replica_rows[0].get("lag_versions") == 0
            and all(node.get("epoch") for node in ok_nodes)
        )
        if converged:
            break
        if time.time() > deadline:
            fail(f"cluster snapshot never converged: {json.dumps(cluster)[:2000]}")
        time.sleep(0.5)
    roles = sorted(node["role"] for node in ok_nodes)
    if roles != ["primary", "replica"]:
        fail(f"unexpected roles in cluster snapshot: {roles}")
    if not cluster["aggregate"]["latency"]:
        fail("cluster aggregate has no merged latency histograms")
    rendered_top = run_cli("top", "--cluster", "--once", "--port", str(router_port))
    if "repro top --cluster" not in rendered_top or "primary" not in rendered_top:
        fail(f"repro top --cluster render is missing panels:\n{rendered_top}")

    for proc in PROCS:
        if proc.poll() is None:
            proc.terminate()
    for proc in PROCS:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
    print(
        f"trace_smoke: OK (trace {trace_id} assembled across "
        f"{len(node_ids)} nodes, delta frame tagged, cluster snapshot saw "
        f"router + {len(ok_nodes)} backends with replica lag 0)"
    )


if __name__ == "__main__":
    main()
