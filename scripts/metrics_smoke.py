#!/usr/bin/env python
"""CI smoke test for the telemetry endpoint.

Boots ``repro serve --metrics-port 0`` as a real subprocess, drives a few
requests through a :class:`ServiceClient`, scrapes ``/metrics``, lints
every line of the exposition document against the text format, checks the
required series are present, and verifies ``/healthz`` reports ok.

Run from the repository root::

    PYTHONPATH=src python scripts/metrics_smoke.py

Exits non-zero (with a diagnostic on stderr) on any failure.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

LISTEN = re.compile(r"listening on [\d.]+:(\d+)")
TELEMETRY = re.compile(r"telemetry on http://[\d.]+:(\d+)/metrics")

# One exposition line: a HELP/TYPE comment or `name{labels} value`.
EXPOSITION_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN|\+Inf|-Inf))$"
)

REQUIRED = [
    'repro_request_seconds_bucket{le="+Inf",op="datalog"}',
    "repro_request_seconds_sum",
    "repro_requests_total{op=",
    "repro_result_cache_hits_total",
    "repro_in_flight_requests",
    "repro_store_version",
    'repro_store_facts{predicate="link"}',
    'repro_store_churn_rows_total{predicate="link"}',
]


def fail(message):
    sys.stderr.write(f"metrics_smoke: FAIL: {message}\n")
    sys.exit(1)


def wait_for_ports(proc, deadline):
    port = metrics_port = None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"server exited early (rc={proc.poll()})")
        sys.stdout.write(line)
        match = LISTEN.search(line)
        if match:
            port = int(match.group(1))
        match = TELEMETRY.search(line)
        if match:
            metrics_port = int(match.group(1))
        if port and metrics_port:
            return port, metrics_port
    fail("timed out waiting for the server to announce its ports")


def main():
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--metrics-port", "0", "--slow-ms", "0",
        ],
        cwd=ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port, metrics_port = wait_for_ports(proc, time.time() + 20)

        from repro.service.client import ServiceClient

        with ServiceClient(port=port) as client:
            client.update(edges=[["a", "link", "b"], ["b", "link", "c"]])
            program = "hop(X, Y) :- link(X, Y)."
            client.datalog(program, predicate="hop")
            client.datalog(program, predicate="hop")  # result-cache hit
            slow = client.slowlog()
            if not slow["entries"]:
                fail("slow_ms=0 recorded no slowlog entries")
            if not slow["entries"][0].get("request_id"):
                fail("slowlog entry has no request_id")

        body = (
            urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/metrics", timeout=10
            )
            .read()
            .decode()
        )
        if not body.endswith("\n"):
            fail("exposition document must end with a newline")
        for line in body.rstrip("\n").splitlines():
            if not EXPOSITION_LINE.match(line):
                fail(f"invalid exposition line: {line!r}")
        for needle in REQUIRED:
            if needle not in body:
                fail(f"required series missing from /metrics: {needle}")

        health = urllib.request.urlopen(
            f"http://127.0.0.1:{metrics_port}/healthz", timeout=10
        )
        if health.status != 200:
            fail(f"/healthz returned {health.status}")
        doc = json.loads(health.read())
        if doc.get("status") != "ok":
            fail(f"/healthz status is {doc.get('status')!r}")

        print(
            f"metrics_smoke: OK — {len(body.splitlines())} exposition lines, "
            f"{len(slow['entries'])} slowlog entries, healthz ok"
        )
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
