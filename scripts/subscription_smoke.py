#!/usr/bin/env python
"""CI smoke test for live query subscriptions.

Boots one server as a real subprocess, then runs N subscriber clients
concurrently with a writer loop and asserts the contract the subsystem
promises:

- **no missed versions**: every subscriber sees one delta frame per
  answer-changing commit, with strictly contiguous versions starting just
  past its snapshot — deltas are never silently skipped;
- **convergence**: after the writer stops, every subscriber's locally
  materialized result set equals a fresh query against the server, and its
  version equals the store's final version;
- **shared registry**: the server reports one shared view and exactly one
  maintenance pass per commit, however many subscribers are attached;
- **CLI**: ``repro watch --count`` subscribes, streams one delta, exits 0.

Run from the repository root::

    PYTHONPATH=src python scripts/subscription_smoke.py

Exits non-zero (with a diagnostic on stderr) on any failure.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

LISTEN = re.compile(r"listening on [\d.]+:(\d+)")

SUBSCRIBERS = 6
COMMITS = 40

QUERY = "define (X) -[reach]-> (Y) { (X) -[link+]-> (Y); }"

PROCS = []


def fail(message):
    sys.stderr.write(f"subscription_smoke: FAIL: {message}\n")
    for proc in PROCS:
        if proc.poll() is None:
            proc.kill()
    sys.exit(1)


def spawn(*args):
    """Start a ``repro`` subcommand; returns (process, announced port)."""
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    PROCS.append(proc)
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"{args[0]} exited before listening (rc={proc.poll()})")
        sys.stdout.write(line)
        match = LISTEN.search(line)
        if match:
            return proc, int(match.group(1))
    fail(f"{args[0]} never announced its port")


class Watcher(threading.Thread):
    """One subscriber client: applies every event, records the versions."""

    def __init__(self, port, final_version):
        super().__init__(daemon=True)
        self.port = port
        self.final_version = final_version
        self.versions = []
        self.snapshot_version = None
        self.rows = None
        self.resyncs = 0
        self.error = None

    def run(self):
        from repro.service.client import ServiceClient

        try:
            with ServiceClient(port=self.port, timeout=60) as client:
                handle = client.subscribe(QUERY, predicate="reach")
                self.snapshot_version = handle.version
                deadline = time.time() + 60
                while handle.version < self.final_version:
                    event = handle.next_event(timeout=1.0)
                    if event is None:
                        if time.time() > deadline:
                            raise RuntimeError(
                                f"stuck at version {handle.version}, "
                                f"waiting for {self.final_version}"
                            )
                        continue
                    if event["type"] == "delta":
                        self.versions.append(event["version"])
                    elif event["type"] == "snapshot":
                        self.resyncs += 1
                    else:
                        raise RuntimeError(f"subscription closed: {event['reason']}")
                self.rows = handle.result("reach")
                handle.unsubscribe()
        except Exception as exc:  # noqa: BLE001 — surfaced by the main thread
            self.error = exc


def main():
    from repro.service.client import ServiceClient

    _proc, port = spawn("serve", "--port", "0")

    # Seed two edges so every subscriber snapshot is non-trivial.
    with ServiceClient(port=port, timeout=30) as writer:
        writer.update(edges=[["a", "link", "b"], ["b", "link", "c"]])
        base_version = writer.stats()["store"]["version"]

    # An anchor subscription owned by this thread keeps the shared view
    # alive (and its counters readable) after the watcher threads finish
    # and unsubscribe.
    anchor = ServiceClient(port=port, timeout=60)
    anchor.subscribe(QUERY, predicate="reach")

    final_version = base_version + COMMITS
    watchers = [Watcher(port, final_version) for _ in range(SUBSCRIBERS)]
    for watcher in watchers:
        watcher.start()

    # Wait until every subscriber is registered so all of them must see the
    # full commit sequence.
    with ServiceClient(port=port, timeout=30) as writer:
        deadline = time.time() + 30
        while True:
            stats = writer.stats()["subs"]
            if stats["active_subscriptions"] == SUBSCRIBERS + 1:
                break
            if time.time() > deadline:
                fail(f"subscribers never registered: {stats}")
            time.sleep(0.05)
        if stats["shared_views"] != 1:
            fail(f"expected one shared view, got {stats['shared_views']}")

        # Writer loop: every commit changes the answer (adds extend a fresh
        # chain; every 5th commit also deletes the previous chain edge).
        for i in range(COMMITS):
            change = {"edges": [[f"c{i}", "link", f"c{i + 1}"]]}
            if i and i % 5 == 0:
                change["remove_edges"] = [[f"c{i - 1}", "link", f"c{i}"]]
            version = writer.update(**change)
            if version != base_version + i + 1:
                fail(f"commit {i} acknowledged version {version}")

        expected = writer.graphlog(QUERY, predicate="reach")["reach"]
        stats = writer.stats()["subs"]
        (view_stats,) = stats["views"].values()
        if view_stats["maintenance_passes"] != COMMITS:
            fail(
                f"expected {COMMITS} maintenance passes (one per commit, "
                f"shared by {SUBSCRIBERS} subscribers), got "
                f"{view_stats['maintenance_passes']}"
            )

    for watcher in watchers:
        watcher.join(timeout=90)
        if watcher.is_alive():
            fail("subscriber thread did not finish")
        if watcher.error is not None:
            fail(f"subscriber failed: {watcher.error!r}")
        if watcher.rows != expected:
            fail(
                f"subscriber diverged: {len(watcher.rows)} rows locally, "
                f"{len(expected)} on the server"
            )
        if watcher.resyncs == 0:
            wanted = list(range(watcher.snapshot_version + 1, final_version + 1))
            if watcher.versions != wanted:
                fail(
                    f"missed versions: saw {watcher.versions[:5]}... "
                    f"({len(watcher.versions)} deltas), wanted "
                    f"{len(wanted)} contiguous from {wanted[0]}"
                )
    anchor.close()

    # The CLI path: watch one delta and exit cleanly.
    with tempfile.NamedTemporaryFile("w", suffix=".gl", delete=False) as handle:
        handle.write(QUERY)
        query_path = handle.name
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"), PYTHONUNBUFFERED="1")
    watch = subprocess.Popen(
        [sys.executable, "-m", "repro", "watch", query_path,
         "--port", str(port), "--predicate", "reach", "--count", "1"],
        cwd=ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    PROCS.append(watch)
    deadline = time.time() + 30
    while "subscribed #" not in (watch.stdout.readline() or ""):
        if time.time() > deadline or watch.poll() is not None:
            fail("repro watch never subscribed")
    with ServiceClient(port=port, timeout=30) as writer:
        writer.update(edges=[["z1", "link", "z2"]])
    out, _ = watch.communicate(timeout=30)
    if watch.returncode != 0:
        fail(f"repro watch exited {watch.returncode}: {out}")
    if "+ reach" not in out:
        fail(f"repro watch printed no delta: {out!r}")
    os.unlink(query_path)

    for proc in PROCS:
        if proc.poll() is None:
            proc.terminate()
    print(
        f"subscription_smoke: OK — {SUBSCRIBERS} subscribers x {COMMITS} "
        f"commits, zero missed versions, one maintenance pass per commit"
    )


if __name__ == "__main__":
    main()
