#!/usr/bin/env python
"""CI smoke test for the replication subsystem.

Boots one primary, two replicas, and one router — all as real
subprocesses, exactly as an operator would — then asserts the two
properties the subsystem promises:

- **read-your-writes through the router**: a write followed immediately
  by a read on the same router connection sees the written data, even
  though the read is served by a replica that may not have applied the
  commit yet when the read arrives (the router attaches a min-version
  token; the replica waits).
- **bounded convergence**: shortly after the write burst stops, every
  replica reports ``lag_versions == 0`` and the exact primary version.
- **failover**: after the primary is SIGKILLed and a replica is promoted
  (``repro promote``), the same router connection resumes both writes and
  reads with zero wrong answers, and a fresh replica of the promoted
  primary converges (the rejoin path).

Run from the repository root::

    PYTHONPATH=src python scripts/replication_smoke.py

Exits non-zero (with a diagnostic on stderr) on any failure.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

LISTEN = re.compile(r"listening on [\d.]+:(\d+)")

WRITES = 30
FAILOVER_WRITES = 10
CONVERGE_SECONDS = 30

PROCS = []


def fail(message):
    sys.stderr.write(f"replication_smoke: FAIL: {message}\n")
    for proc in PROCS:
        if proc.poll() is None:
            proc.kill()
    sys.exit(1)


def spawn(*args):
    """Start a ``repro`` subcommand; returns (process, announced port)."""
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    PROCS.append(proc)
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"{args[0]} exited before listening (rc={proc.poll()})")
        sys.stdout.write(line)
        match = LISTEN.search(line)
        if match:
            return proc, int(match.group(1))
    fail(f"{args[0]} never announced its port")


def main():
    from repro.errors import ReadOnlyError
    from repro.service.client import ServiceClient

    primary_proc, primary_port = spawn("serve", "--port", "0")
    address = f"127.0.0.1:{primary_port}"
    replica_procs = []
    replica_ports = []
    for _ in range(2):
        proc, port = spawn(
            "serve", "--port", "0", "--replica-of", address,
            "--repl-wait-ms", "500", "--version-wait-ms", "5000",
        )
        replica_procs.append(proc)
        replica_ports.append(port)
    _router, router_port = spawn(
        "route", "--port", "0", "--primary", address,
        *(arg for port in replica_ports for arg in ("--replica", f"127.0.0.1:{port}")),
    )

    program = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y)."
    with ServiceClient(port=router_port, timeout=30) as client:
        # Write burst through the router; after every single write, a read
        # on the same connection must already see it (read-your-writes).
        for i in range(WRITES):
            version = client.update(edges=[[f"n{i}", "e", f"n{i + 1}"]])
            if version != i + 1:
                fail(f"write {i} acknowledged version {version}, expected {i + 1}")
            rows = client.datalog(program)["tc"]
            if (f"n{i}", f"n{i + 1}") not in rows:
                fail(f"read after write {i} is missing edge n{i}->n{i + 1}")
        if ("n0", f"n{WRITES}") not in client.datalog(program)["tc"]:
            fail("transitive closure over the full chain is missing")

    # Writes sent straight to a replica must be rejected with the typed error.
    with ServiceClient(port=replica_ports[0], timeout=10) as reader:
        try:
            reader.update(edges=[["x", "e", "y"]])
        except ReadOnlyError as exc:
            if address not in str(exc):
                fail(f"read_only error does not name the primary: {exc}")
        else:
            fail("replica accepted a write")

    # Both replicas converge to the primary's exact version with zero lag.
    deadline = time.time() + CONVERGE_SECONDS
    for port in replica_ports:
        with ServiceClient(port=port, timeout=10) as reader:
            while True:
                status = reader.stats()["replication"]
                if (
                    status["applied_version"] == WRITES
                    and status["lag_versions"] == 0
                ):
                    break
                if time.time() > deadline:
                    fail(f"replica :{port} stuck at {status}")
                time.sleep(0.1)

    # ---- failover: SIGKILL the primary, promote replica 1, keep serving ----
    primary_proc.kill()
    primary_proc.wait(timeout=10)
    # Replica 2 is retired with its primary (an operator would retarget it);
    # the rejoin path is exercised below with a fresh replica instead.
    replica_procs[1].terminate()
    replica_procs[1].wait(timeout=10)

    promoted_port = replica_ports[0]
    promote = subprocess.run(
        [sys.executable, "-m", "repro", "promote", "--port", str(promoted_port)],
        cwd=ROOT,
        env=dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src")),
        capture_output=True,
        text=True,
        timeout=30,
    )
    if promote.returncode != 0 or '"promoted": true' not in promote.stdout:
        fail(f"repro promote failed: rc={promote.returncode} {promote.stdout}"
             f"{promote.stderr}")

    # The router never restarted: its next write hits the dead primary,
    # fails over to the promoted replica, and every read-after-write must
    # still see its own data — zero wrong answers across the transition.
    total = WRITES + FAILOVER_WRITES
    with ServiceClient(port=router_port, timeout=30) as client:
        for i in range(WRITES, total):
            version = client.update(edges=[[f"n{i}", "e", f"n{i + 1}"]])
            if version != i + 1:
                fail(f"post-failover write {i} acknowledged version {version}, "
                     f"expected {i + 1}")
            rows = client.datalog(program)["tc"]
            if (f"n{i}", f"n{i + 1}") not in rows:
                fail(f"post-failover read {i} is missing edge n{i}->n{i + 1}")
        if ("n0", f"n{total}") not in client.datalog(program)["tc"]:
            fail("transitive closure across the failover boundary is missing")

    # Rejoin: a fresh replica of the PROMOTED primary (the role a recovered
    # old primary would take) bootstraps under the new epoch and converges.
    promoted_address = f"127.0.0.1:{promoted_port}"
    _proc, rejoin_port = spawn(
        "serve", "--port", "0", "--replica-of", promoted_address,
        "--repl-wait-ms", "500",
    )
    with ServiceClient(port=promoted_port, timeout=10) as reader:
        promoted_epoch = reader.stats()["store"]["epoch"]
    deadline = time.time() + CONVERGE_SECONDS
    with ServiceClient(port=rejoin_port, timeout=10) as reader:
        while True:
            status = reader.stats()["replication"]
            if (
                status["applied_version"] == total
                and status["lag_versions"] == 0
                and status["primary_epoch"] == promoted_epoch
            ):
                break
            if time.time() > deadline:
                fail(f"rejoined replica :{rejoin_port} stuck at {status}")
            time.sleep(0.1)

    for proc in PROCS:
        if proc.poll() is None:
            proc.terminate()
    for proc in PROCS:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
    print(
        f"replication_smoke: OK ({WRITES} read-your-writes round trips, "
        f"2 replicas converged, replica rejected the write, "
        f"{FAILOVER_WRITES} writes+reads across promote/failover, "
        f"rejoined replica converged under epoch {promoted_epoch})"
    )


if __name__ == "__main__":
    main()
